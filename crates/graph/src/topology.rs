//! Generators for the network architectures analyzed in the paper
//! (Section I "Contributions"): clique, hypercube, butterfly, grid, line,
//! cluster and star — plus ring, torus, complete binary tree and connected
//! Erdős–Rényi graphs used as additional experiment substrates, and three
//! large-scale families sized for the landmark routing tier (10⁵–10⁶
//! nodes): random geometric graphs, power-law preferential-attachment
//! graphs and fog/cloud trees.
//!
//! All generators assemble edges through [`GraphBuilder`], which keeps
//! construction `O(n + m)` regardless of insertion order.

use crate::graph::{GraphBuilder, NodeId, Weight};
use crate::network::Network;
use crate::structured::Structured;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A topology descriptor: a recipe that [`Topology::build`]s into a
/// [`Network`]. Serializable so experiment configurations round-trip.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Complete graph on `n` nodes (Theorem 3: O(k)-competitive greedy).
    Clique {
        /// Number of nodes.
        n: u32,
    },
    /// Path graph (Section IV-D: O(log^3 n)-competitive bucket schedule).
    Line {
        /// Number of nodes.
        n: u32,
    },
    /// Cycle graph.
    Ring {
        /// Number of nodes.
        n: u32,
    },
    /// d-dimensional grid (log n-dimensional grids get O(k log n) greedy).
    Grid {
        /// Side lengths.
        dims: Vec<u32>,
    },
    /// Hypercube of `2^dim` nodes (Section III-D: O(k log n) greedy).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// `dim`-dimensional butterfly: `(dim+1) * 2^dim` nodes (same bound as
    /// the hypercube, Section III-D).
    Butterfly {
        /// Dimension.
        dim: u32,
    },
    /// Star of `rays` rays with `ray_len` nodes each (Section IV-D).
    Star {
        /// Number of rays (α).
        rays: u32,
        /// Nodes per ray (β).
        ray_len: u32,
    },
    /// Cluster graph of `cliques` cliques with `clique_size` nodes and
    /// complete bridge edges of weight `bridge_weight` (Section IV-D,
    /// requires γ >= β).
    Cluster {
        /// Number of cliques (α).
        cliques: u32,
        /// Nodes per clique (β).
        clique_size: u32,
        /// Bridge weight (γ).
        bridge_weight: Weight,
    },
    /// d-dimensional torus.
    Torus {
        /// Side lengths.
        dims: Vec<u32>,
    },
    /// Complete binary tree with `depth` levels of edges
    /// (`2^(depth+1) - 1` nodes).
    Tree {
        /// Depth (root at depth 0).
        depth: u32,
    },
    /// Connected Erdős–Rényi-style random graph: a random spanning tree plus
    /// random extra edges until the average degree is ~`avg_degree`, edge
    /// weights uniform in `1..=max_weight`.
    Random {
        /// Number of nodes.
        n: u32,
        /// Target average degree (>= 2 recommended).
        avg_degree: u32,
        /// Maximum edge weight (1 = unweighted).
        max_weight: Weight,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Random geometric graph: nodes at integer positions in a square
    /// sized so expected density is ~1 node per `radius × radius` cell;
    /// nodes within Euclidean distance `radius` are linked with weight
    /// ≈ their distance. A deterministic cell-order chain guarantees
    /// connectivity. Scales to 10⁵–10⁶ nodes.
    Geometric {
        /// Number of nodes.
        n: u32,
        /// Connection radius (also the cell size; >= 1).
        radius: u32,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Power-law graph by preferential attachment: each new node links to
    /// `attach` earlier nodes sampled proportionally to degree. Unit
    /// weights; connected by construction. Scales to 10⁵–10⁶ nodes.
    PowerLaw {
        /// Number of nodes.
        n: u32,
        /// Edges added per arriving node (>= 1).
        attach: u32,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Fog/cloud hierarchy: complete `fanout`-ary tree with `levels`
    /// levels and power-of-two edge weights shrinking toward the leaves
    /// (see [`Structured::FogTree`]). Closed-form routing at any size.
    FogTree {
        /// Number of levels (>= 1).
        levels: u32,
        /// Children per internal node (>= 1).
        fanout: u32,
    },
}

impl Topology {
    /// Short human-readable name, e.g. `"hypercube(d=6)"`.
    pub fn name(&self) -> String {
        match self {
            Topology::Clique { n } => format!("clique(n={n})"),
            Topology::Line { n } => format!("line(n={n})"),
            Topology::Ring { n } => format!("ring(n={n})"),
            Topology::Grid { dims } => format!("grid({dims:?})"),
            Topology::Hypercube { dim } => format!("hypercube(d={dim})"),
            Topology::Butterfly { dim } => format!("butterfly(d={dim})"),
            Topology::Star { rays, ray_len } => format!("star(a={rays},b={ray_len})"),
            Topology::Cluster {
                cliques,
                clique_size,
                bridge_weight,
            } => format!("cluster(a={cliques},b={clique_size},g={bridge_weight})"),
            Topology::Torus { dims } => format!("torus({dims:?})"),
            Topology::Tree { depth } => format!("tree(depth={depth})"),
            Topology::Random {
                n,
                avg_degree,
                max_weight,
                seed,
            } => format!("random(n={n},deg={avg_degree},w={max_weight},seed={seed})"),
            Topology::Geometric { n, radius, seed } => {
                format!("geometric(n={n},r={radius},seed={seed})")
            }
            Topology::PowerLaw { n, attach, seed } => {
                format!("powerlaw(n={n},m={attach},seed={seed})")
            }
            Topology::FogTree { levels, fanout } => format!("fogtree(l={levels},f={fanout})"),
        }
    }

    /// Number of nodes the built network will have.
    pub fn n(&self) -> usize {
        match self {
            Topology::Clique { n } | Topology::Line { n } | Topology::Ring { n } => *n as usize,
            Topology::Grid { dims } | Topology::Torus { dims } => {
                dims.iter().map(|&d| d as usize).product()
            }
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Butterfly { dim } => (*dim as usize + 1) << dim,
            Topology::Star { rays, ray_len } => 1 + (*rays as usize) * (*ray_len as usize),
            Topology::Cluster {
                cliques,
                clique_size,
                ..
            } => (*cliques as usize) * (*clique_size as usize),
            Topology::Tree { depth } => (1usize << (depth + 1)) - 1,
            Topology::Random { n, .. } => *n as usize,
            Topology::Geometric { n, .. } | Topology::PowerLaw { n, .. } => *n as usize,
            Topology::FogTree { levels, fanout } => Structured::FogTree {
                levels: *levels,
                fanout: *fanout,
            }
            .n(),
        }
    }

    /// Build the network.
    ///
    /// # Panics
    /// Panics on degenerate parameters (zero sizes, γ < β for clusters).
    pub fn build(&self) -> Network {
        match self {
            Topology::Clique { n } => clique(*n),
            Topology::Line { n } => line(*n),
            Topology::Ring { n } => ring(*n),
            Topology::Grid { dims } => grid(dims),
            Topology::Hypercube { dim } => hypercube(*dim),
            Topology::Butterfly { dim } => butterfly(*dim),
            Topology::Star { rays, ray_len } => star(*rays, *ray_len),
            Topology::Cluster {
                cliques,
                clique_size,
                bridge_weight,
            } => cluster(*cliques, *clique_size, *bridge_weight),
            Topology::Torus { dims } => torus(dims),
            Topology::Tree { depth } => tree(*depth),
            Topology::Random {
                n,
                avg_degree,
                max_weight,
                seed,
            } => random(*n, *avg_degree, *max_weight, *seed),
            Topology::Geometric { n, radius, seed } => geometric(*n, *radius, *seed),
            Topology::PowerLaw { n, attach, seed } => power_law(*n, *attach, *seed),
            Topology::FogTree { levels, fanout } => fog_tree(*levels, *fanout),
        }
    }
}

/// Add an edge inside a builder. Builders only link nodes they have
/// already allocated and never repeat an edge, so a failure here is a
/// generator bug, not an input condition.
fn link(g: &mut GraphBuilder, u: NodeId, v: NodeId, w: Weight) {
    g.add_edge(u, v, w)
        .expect("topology builders link distinct existing nodes exactly once"); // dtm-lint: allow(C1) -- builder invariant: endpoints are allocated above and each edge is added once
}

/// Complete graph on `n` nodes, unit weights.
pub fn clique(n: u32) -> Network {
    assert!(n >= 1, "clique needs at least one node");
    let mut g = GraphBuilder::new(n as usize, format!("clique(n={n})"));
    for u in 0..n {
        for v in (u + 1)..n {
            link(&mut g, NodeId(u), NodeId(v), 1);
        }
    }
    Network::new(g.build(), Some(Structured::Clique { n }))
}

/// Path graph on `n` nodes, unit weights.
pub fn line(n: u32) -> Network {
    assert!(n >= 1, "line needs at least one node");
    let mut g = GraphBuilder::new(n as usize, format!("line(n={n})"));
    for u in 1..n {
        link(&mut g, NodeId(u - 1), NodeId(u), 1);
    }
    Network::new(g.build(), Some(Structured::Line { n }))
}

/// Cycle on `n >= 3` nodes, unit weights.
pub fn ring(n: u32) -> Network {
    assert!(n >= 3, "ring needs at least three nodes");
    let mut g = GraphBuilder::new(n as usize, format!("ring(n={n})"));
    for u in 0..n {
        link(&mut g, NodeId(u), NodeId((u + 1) % n), 1);
    }
    Network::new(g.build(), Some(Structured::Ring { n }))
}

/// d-dimensional grid with side lengths `dims`, unit weights.
pub fn grid(dims: &[u32]) -> Network {
    assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 1), "bad dims");
    let n: usize = dims.iter().map(|&d| d as usize).product();
    let s = Structured::Grid {
        dims: dims.to_vec(),
    };
    let mut g = GraphBuilder::new(n, format!("grid({dims:?})"));
    for id in 0..n as u32 {
        // Connect to +1 neighbor in each dimension.
        let mut stride = 1u32;
        let mut rest = id;
        for &d in dims {
            let coord = rest % d;
            if coord + 1 < d {
                link(&mut g, NodeId(id), NodeId(id + stride), 1);
            }
            rest /= d;
            stride *= d;
        }
    }
    Network::new(g.build(), Some(s))
}

/// d-dimensional torus with side lengths `dims`, unit weights.
pub fn torus(dims: &[u32]) -> Network {
    assert!(
        !dims.is_empty() && dims.iter().all(|&d| d >= 3),
        "torus sides must be >= 3"
    );
    let n: usize = dims.iter().map(|&d| d as usize).product();
    let s = Structured::Torus {
        dims: dims.to_vec(),
    };
    let mut g = GraphBuilder::new(n, format!("torus({dims:?})"));
    for id in 0..n as u32 {
        let mut stride = 1u32;
        let mut rest = id;
        for &d in dims {
            let coord = rest % d;
            let next_coord = (coord + 1) % d;
            let nb = id - coord * stride + next_coord * stride;
            if g.edge_weight(NodeId(id), NodeId(nb)).is_none() {
                link(&mut g, NodeId(id), NodeId(nb), 1);
            }
            rest /= d;
            stride *= d;
        }
    }
    Network::new(g.build(), Some(s))
}

/// Hypercube with `2^dim` nodes, unit weights.
pub fn hypercube(dim: u32) -> Network {
    assert!((1..=20).contains(&dim), "hypercube dim out of range");
    let n = 1u32 << dim;
    let mut g = GraphBuilder::new(n as usize, format!("hypercube(d={dim})"));
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1 << b);
            if u < v {
                link(&mut g, NodeId(u), NodeId(v), 1);
            }
        }
    }
    Network::new(g.build(), Some(Structured::Hypercube { dim }))
}

/// `dim`-dimensional butterfly: levels `0..=dim`, `2^dim` rows; node
/// `(level, row)` has id `level * 2^dim + row`. Unit weights. No closed-form
/// oracle — distances go through Dijkstra.
pub fn butterfly(dim: u32) -> Network {
    assert!((1..=16).contains(&dim), "butterfly dim out of range");
    let rows = 1u32 << dim;
    let n = (dim + 1) * rows;
    let mut g = GraphBuilder::new(n as usize, format!("butterfly(d={dim})"));
    for level in 0..dim {
        for row in 0..rows {
            let here = level * rows + row;
            let straight = (level + 1) * rows + row;
            let cross = (level + 1) * rows + (row ^ (1 << level));
            link(&mut g, NodeId(here), NodeId(straight), 1);
            link(&mut g, NodeId(here), NodeId(cross), 1);
        }
    }
    Network::new(g.build(), None)
}

/// Star with `rays` rays of `ray_len` nodes; node 0 is the center.
pub fn star(rays: u32, ray_len: u32) -> Network {
    assert!(rays >= 1 && ray_len >= 1, "star needs rays and ray length");
    let s = Structured::Star { rays, ray_len };
    let n = s.n();
    let mut g = GraphBuilder::new(n, format!("star(a={rays},b={ray_len})"));
    for r in 0..rays {
        let first = 1 + r * ray_len;
        link(&mut g, NodeId(0), NodeId(first), 1);
        for p in 1..ray_len {
            link(&mut g, NodeId(first + p - 1), NodeId(first + p), 1);
        }
    }
    Network::new(g.build(), Some(s))
}

/// Cluster graph: `cliques` cliques of `clique_size` unit-weight nodes;
/// node `c * clique_size` is clique `c`'s bridge; bridges form a complete
/// graph with weight `bridge_weight`. The paper requires γ >= β.
pub fn cluster(cliques: u32, clique_size: u32, bridge_weight: Weight) -> Network {
    assert!(cliques >= 1 && clique_size >= 1, "cluster needs size");
    assert!(
        bridge_weight >= clique_size as Weight,
        "paper requires bridge weight γ >= β (clique size)"
    );
    let s = Structured::Cluster {
        cliques,
        clique_size,
        bridge_weight,
    };
    let n = s.n();
    let mut g = GraphBuilder::new(
        n,
        format!("cluster(a={cliques},b={clique_size},g={bridge_weight})"),
    );
    for c in 0..cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                link(&mut g, NodeId(base + i), NodeId(base + j), 1);
            }
        }
    }
    for c1 in 0..cliques {
        for c2 in (c1 + 1)..cliques {
            link(
                &mut g,
                NodeId(c1 * clique_size),
                NodeId(c2 * clique_size),
                bridge_weight,
            );
        }
    }
    Network::new(g.build(), Some(s))
}

/// Complete binary tree with `depth` edge-levels (`2^(depth+1) - 1` nodes),
/// unit weights. Node `i`'s children are `2i+1` and `2i+2`.
pub fn tree(depth: u32) -> Network {
    assert!(depth <= 20, "tree depth out of range");
    let n = (1usize << (depth + 1)) - 1;
    let mut g = GraphBuilder::new(n, format!("tree(depth={depth})"));
    for i in 0..n as u32 {
        for child in [2 * i + 1, 2 * i + 2] {
            if (child as usize) < n {
                link(&mut g, NodeId(i), NodeId(child), 1);
            }
        }
    }
    Network::new(g.build(), None)
}

/// Connected random graph: a uniformly-shuffled spanning tree plus extra
/// random edges until average degree ~`avg_degree`, weights in
/// `1..=max_weight`. Deterministic for a fixed `seed`.
pub fn random(n: u32, avg_degree: u32, max_weight: Weight, seed: u64) -> Network {
    assert!(n >= 2, "random graph needs at least two nodes");
    assert!(max_weight >= 1, "weights must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = GraphBuilder::new(
        n as usize,
        format!("random(n={n},deg={avg_degree},w={max_weight},seed={seed})"),
    );
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut rng);
    // Random spanning tree: attach each node to a random earlier one.
    for i in 1..n as usize {
        let parent = order[rng.gen_range(0..i)];
        let w = rng.gen_range(1..=max_weight);
        link(&mut g, NodeId(order[i]), NodeId(parent), w);
    }
    let target_edges =
        ((n as usize) * (avg_degree as usize) / 2).min(n as usize * (n as usize - 1) / 2);
    let mut attempts = 0;
    while g.edge_count() < target_edges && attempts < 50 * target_edges {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || g.edge_weight(NodeId(u), NodeId(v)).is_some() {
            continue;
        }
        let w = rng.gen_range(1..=max_weight);
        link(&mut g, NodeId(u), NodeId(v), w);
    }
    Network::new(g.build(), None)
}

/// Integer square root (floor), avoiding floats for determinism (D5).
fn isqrt(x: u64) -> u64 {
    if x < 2 {
        return x;
    }
    let mut r = 1u64 << (u64::BITS - x.leading_zeros()).div_ceil(2);
    loop {
        let next = (r + x / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

/// Random geometric graph on `n` nodes: integer positions uniform in a
/// square of side `isqrt(n) * radius` (expected density ≈ 1 node per
/// `radius × radius` cell), an edge between every pair within Euclidean
/// distance `radius` (weight `max(1, ⌊distance⌋)`), plus a deterministic
/// chain through the cells — same weight rule — so the graph is always
/// connected. Neighbor search uses the 3×3 surrounding cells, so
/// construction is `O(n)` expected. Deterministic in `seed`; all math is
/// integer (D5).
pub fn geometric(n: u32, radius: u32, seed: u64) -> Network {
    assert!(n >= 2, "geometric graph needs at least two nodes");
    assert!(radius >= 1, "geometric radius must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let side = (isqrt(n as u64).max(1) * radius as u64).max(radius as u64 + 1);
    let cells_per_row = (side / radius as u64 + 1) as usize;
    let mut g = GraphBuilder::new(n as usize, format!("geometric(n={n},r={radius},seed={seed})"));
    let pos: Vec<(u64, u64)> = (0..n)
        .map(|_| (rng.gen_range(0..side), rng.gen_range(0..side)))
        .collect();
    // Bucket nodes by cell for 3×3 neighborhood search.
    let cell_of = |p: (u64, u64)| -> usize {
        (p.1 / radius as u64) as usize * cells_per_row + (p.0 / radius as u64) as usize
    };
    let mut cells: Vec<Vec<u32>> = (0..cells_per_row * cells_per_row).map(|_| Vec::new()).collect();
    for (i, &p) in pos.iter().enumerate() {
        cells[cell_of(p)].push(i as u32);
    }
    let dist2 = |a: (u64, u64), b: (u64, u64)| -> u64 {
        let dx = a.0.abs_diff(b.0);
        let dy = a.1.abs_diff(b.1);
        dx * dx + dy * dy
    };
    let r2 = radius as u64 * radius as u64;
    for u in 0..n {
        let p = pos[u as usize];
        let (cx, cy) = (
            (p.0 / radius as u64) as isize,
            (p.1 / radius as u64) as isize,
        );
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (x, y) = (cx + dx, cy + dy);
                if x < 0 || y < 0 || x as usize >= cells_per_row || y as usize >= cells_per_row {
                    continue;
                }
                for &v in &cells[y as usize * cells_per_row + x as usize] {
                    if v <= u {
                        continue; // each unordered pair considered once
                    }
                    let d2 = dist2(p, pos[v as usize]);
                    if d2 <= r2 {
                        link(&mut g, NodeId(u), NodeId(v), isqrt(d2).max(1));
                    }
                }
            }
        }
    }
    // Connectivity chain: visit nodes in (cell, id) order and link each to
    // its predecessor unless already adjacent. Deterministic; adds < n
    // edges whose weight follows the same distance rule.
    let mut chain: Vec<u32> = (0..n).collect();
    chain.sort_unstable_by_key(|&i| (cell_of(pos[i as usize]), i));
    for w in chain.windows(2) {
        let (a, b) = (NodeId(w[0]), NodeId(w[1]));
        if g.edge_weight(a, b).is_none() {
            let d = isqrt(dist2(pos[w[0] as usize], pos[w[1] as usize])).max(1);
            link(&mut g, a, b, d);
        }
    }
    Network::new(g.build(), None)
}

/// Power-law (preferential attachment) graph: nodes arrive in id order;
/// node `i` links to `attach` distinct earlier nodes chosen proportionally
/// to current degree (the classic endpoint-list trick). Unit weights;
/// connected by construction since every node attaches to a predecessor.
/// Deterministic in `seed`.
pub fn power_law(n: u32, attach: u32, seed: u64) -> Network {
    assert!(n >= 2, "power-law graph needs at least two nodes");
    assert!(attach >= 1, "attach must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = GraphBuilder::new(n as usize, format!("powerlaw(n={n},m={attach},seed={seed})"));
    // Every edge endpoint lands here once; sampling an entry uniformly is
    // degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n as usize * attach as usize);
    for i in 1..n {
        let want = attach.min(i);
        let mut added = 0u32;
        let mut attempts = 0u32;
        while added < want {
            attempts += 1;
            let target = if endpoints.is_empty() || attempts > 8 * attach {
                // Fallback (and bootstrap): uniform over earlier nodes;
                // keeps the loop bounded when degree sampling keeps
                // hitting duplicates.
                rng.gen_range(0..i)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target == i || g.edge_weight(NodeId(i), NodeId(target)).is_some() {
                continue;
            }
            link(&mut g, NodeId(i), NodeId(target), 1);
            endpoints.push(i);
            endpoints.push(target);
            added += 1;
        }
    }
    Network::new(g.build(), None)
}

/// Fog/cloud tree: complete `fanout`-ary tree with `levels` levels, edge
/// weights `2^(levels-1-d)` into depth `d` — long-latency links near the
/// cloud root, fast links at the device edge. Routing and distances come
/// from the [`Structured::FogTree`] closed forms, so million-node
/// instances cost no Dijkstra at all.
pub fn fog_tree(levels: u32, fanout: u32) -> Network {
    assert!((1..=30).contains(&levels), "fog tree levels out of range");
    assert!(fanout >= 1, "fog tree fanout must be positive");
    let s = Structured::FogTree { levels, fanout };
    let n = s.n();
    assert!(n <= u32::MAX as usize / 4, "fog tree too large");
    let mut g = GraphBuilder::new(n, format!("fogtree(l={levels},f={fanout})"));
    let mut first = 1u64; // first id at the current child depth
    let mut width = fanout as u64;
    for depth in 1..levels {
        let w: Weight = 1u64 << (levels - 1 - depth);
        for i in first..(first + width).min(n as u64) {
            let parent = (i - 1) / fanout as u64;
            link(&mut g, NodeId(parent as u32), NodeId(i as u32), w);
        }
        first += width;
        width *= fanout as u64;
    }
    Network::new(g.build(), Some(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_paths::ShortestPathTree;
    use proptest::prelude::*;

    /// For structured topologies the closed-form oracle must agree with
    /// Dijkstra on the generated graph.
    fn assert_oracle_matches(net: &Network) {
        let s = net.structured().expect("structured topology").clone();
        let g = net.graph();
        for target in g.nodes() {
            let tree = ShortestPathTree::compute(g, target);
            for v in g.nodes() {
                assert_eq!(
                    s.dist(v, target),
                    tree.dist(v),
                    "{}: dist({v},{target})",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn clique_matches_dijkstra() {
        assert_oracle_matches(&clique(7));
    }

    #[test]
    fn line_matches_dijkstra() {
        assert_oracle_matches(&line(9));
    }

    #[test]
    fn ring_matches_dijkstra() {
        assert_oracle_matches(&ring(8));
        assert_oracle_matches(&ring(9));
    }

    #[test]
    fn grid_matches_dijkstra() {
        assert_oracle_matches(&grid(&[3, 4]));
        assert_oracle_matches(&grid(&[2, 3, 2]));
        assert_oracle_matches(&grid(&[5]));
    }

    #[test]
    fn torus_matches_dijkstra() {
        assert_oracle_matches(&torus(&[4, 3]));
        assert_oracle_matches(&torus(&[5]));
    }

    #[test]
    fn hypercube_matches_dijkstra() {
        assert_oracle_matches(&hypercube(4));
    }

    #[test]
    fn star_matches_dijkstra() {
        assert_oracle_matches(&star(4, 3));
        assert_oracle_matches(&star(1, 4));
    }

    #[test]
    fn cluster_matches_dijkstra() {
        assert_oracle_matches(&cluster(3, 4, 5));
        assert_oracle_matches(&cluster(2, 2, 2));
        assert_oracle_matches(&cluster(4, 1, 2));
    }

    #[test]
    fn butterfly_shape() {
        let net = butterfly(3);
        assert_eq!(net.n(), 4 * 8);
        // Degree: internal levels have 4 neighbors, boundary levels 2.
        let g = net.graph();
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(g.is_connected());
        // Known property: diameter of k-dim butterfly is 2k.
        assert_eq!(net.diameter(), 6);
    }

    #[test]
    fn tree_shape() {
        let net = tree(3);
        assert_eq!(net.n(), 15);
        assert_eq!(net.diameter(), 6);
    }

    #[test]
    fn fog_tree_matches_dijkstra() {
        assert_oracle_matches(&fog_tree(3, 2));
        assert_oracle_matches(&fog_tree(4, 3));
        assert_oracle_matches(&fog_tree(2, 6));
        assert_oracle_matches(&fog_tree(5, 1));
    }

    #[test]
    fn geometric_deterministic_and_connected() {
        let a = geometric(200, 4, 13);
        let b = geometric(200, 4, 13);
        assert!(a.graph().is_connected());
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
        // Weights follow the distance rule: positive, at most ~r√2 for
        // in-radius links plus the (possibly longer) chain edges.
        assert!(a.graph().min_edge_weight().unwrap() >= 1);
    }

    #[test]
    fn power_law_deterministic_connected_and_skewed() {
        let a = power_law(300, 2, 5);
        let b = power_law(300, 2, 5);
        assert!(a.graph().is_connected());
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
        // Preferential attachment produces hubs: the max degree should be
        // far above the mean (~4 for attach=2).
        let max_deg = a.graph().nodes().map(|v| a.graph().degree(v)).max().unwrap();
        assert!(max_deg >= 10, "expected a hub, max degree {max_deg}");
        assert!(a.graph().uniform_weight() == Some(1));
    }

    #[test]
    fn isqrt_exact() {
        for x in 0..2000u64 {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "isqrt({x}) = {r}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn random_graph_deterministic_and_connected() {
        let a = random(40, 4, 3, 7);
        let b = random(40, 4, 3, 7);
        assert!(a.graph().is_connected());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn topology_enum_roundtrip() {
        let topos = vec![
            Topology::Clique { n: 5 },
            Topology::Line { n: 6 },
            Topology::Hypercube { dim: 3 },
            Topology::Butterfly { dim: 2 },
            Topology::Star {
                rays: 3,
                ray_len: 2,
            },
            Topology::Cluster {
                cliques: 2,
                clique_size: 3,
                bridge_weight: 3,
            },
            Topology::Tree { depth: 2 },
            Topology::Grid { dims: vec![3, 3] },
            Topology::Geometric {
                n: 60,
                radius: 3,
                seed: 2,
            },
            Topology::PowerLaw {
                n: 50,
                attach: 2,
                seed: 3,
            },
            Topology::FogTree {
                levels: 3,
                fanout: 3,
            },
        ];
        for t in topos {
            let net = t.build();
            assert_eq!(net.n(), t.n(), "{}", t.name());
            assert!(net.graph().is_connected());
            assert!(!t.name().is_empty());
            let json = serde_json::to_string(&t).unwrap();
            let back: Topology = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    #[should_panic(expected = "γ >= β")]
    fn cluster_rejects_small_gamma() {
        let _ = cluster(2, 5, 3);
    }

    proptest! {
        #[test]
        fn random_graphs_always_connected(n in 2u32..60, deg in 0u32..6, w in 1u64..5, seed in 0u64..50) {
            let net = random(n, deg, w, seed);
            prop_assert!(net.graph().is_connected());
            prop_assert_eq!(net.n(), n as usize);
        }

        #[test]
        fn geometric_always_connected(n in 2u32..120, r in 1u32..6, seed in 0u64..30) {
            let net = geometric(n, r, seed);
            prop_assert!(net.graph().is_connected());
            prop_assert_eq!(net.n(), n as usize);
        }

        #[test]
        fn power_law_always_connected(n in 2u32..120, m in 1u32..4, seed in 0u64..30) {
            let net = power_law(n, m, seed);
            prop_assert!(net.graph().is_connected());
            prop_assert_eq!(net.n(), n as usize);
        }

        #[test]
        fn grid_oracle_random_dims(d0 in 1u32..5, d1 in 1u32..5, d2 in 1u32..4) {
            let dims = vec![d0, d1, d2];
            let net = grid(&dims);
            // Spot-check a few pairs against Dijkstra.
            let g = net.graph();
            let tree = ShortestPathTree::compute(g, NodeId(0));
            let s = net.structured().unwrap();
            for v in g.nodes() {
                prop_assert_eq!(s.dist(v, NodeId(0)), tree.dist(v));
            }
        }
    }
}
