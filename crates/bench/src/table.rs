//! Minimal report tables: aligned plain text (markdown-compatible) plus
//! CSV export, so EXPERIMENTS.md rows can be pasted verbatim.

use std::fmt::Write as _;

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id and claim).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float ratio compactly.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## T"));
        assert!(s.contains("| a   | long-header |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
