//! Human view over a flight-recorder dump (`*.flight.jsonl`).
//!
//! ```text
//! cargo run -p dtm-bench --release --bin flight_report -- run.flight.jsonl \
//!     [--tail N]
//! # --tail N   how many of the newest step records to list (default 16)
//! ```
//!
//! Validates the dump against the schema first
//! ([`dtm_telemetry::validate_flight_dump`]), then prints the recorder
//! metadata, backlog statistics over the retained window, the newest N
//! step records, the decision tail, and any appended health events —
//! the post-mortem view of a long open-system run's last K steps.

use serde::Value;

/// Value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Print `msg` to stderr and exit nonzero. Like `trace_report`, this
/// report must diagnose bad input (empty, truncated, corrupt dumps)
/// rather than panic.
fn fail(msg: &str) -> ! {
    eprintln!("flight_report: {msg}");
    std::process::exit(2);
}

/// Typed lines of one kind, in file order.
fn lines_of<'a>(parsed: &'a [Value], kind: &str) -> Vec<&'a Value> {
    parsed
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some(kind))
        .filter_map(|v| v.get("data"))
        .collect()
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Id newtypes (e.g. `TxnId`) serialize as single-element arrays;
/// unwrap either shape to the number.
fn id_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::Array(items)) if items.len() == 1 => items[0].as_u64().unwrap_or(0),
        Some(other) => other.as_u64().unwrap_or(0),
        None => 0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        fail("usage: flight_report <run.flight.jsonl> [--tail N]");
    };
    let tail: usize = match flag_value(&args, "--tail") {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--tail takes an integer, got {v:?}"))),
        None => 16,
    };
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let summary = dtm_telemetry::validate_flight_dump(&raw)
        .unwrap_or_else(|e| fail(&format!("{path} is not a valid flight dump: {e}")));

    let parsed: Vec<Value> = raw
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .unwrap_or_else(|e| fail(&format!("{path}: line failed to parse: {e}")))
        })
        .collect();
    let steps = lines_of(&parsed, "flight_step");
    let decisions = lines_of(&parsed, "flight_decision");
    let health = lines_of(&parsed, "health_event");

    println!("flight dump     : {path}");
    println!("ring capacity K : {}", summary.k);
    println!("steps seen      : {}", summary.steps_seen);
    println!(
        "retained window : {} records, t = [{}, {}]",
        summary.records, summary.first_t, summary.last_t
    );

    if !steps.is_empty() {
        let live: Vec<u64> = steps.iter().map(|s| u(s, "live_after")).collect();
        let lo = live.iter().min().copied().unwrap_or(0);
        let hi = live.iter().max().copied().unwrap_or(0);
        let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
        let committed: u64 = steps.iter().map(|s| u(s, "committed")).sum();
        let arrived: u64 = steps.iter().map(|s| u(s, "arrived")).sum();
        println!(
            "window backlog  : min {lo}, mean {mean:.1}, max {hi} (arrived {arrived}, committed {committed})"
        );
        let timed = steps
            .iter()
            .filter(|s| matches!(s.get("timed"), Some(Value::Bool(true))))
            .count();
        println!("timed steps     : {timed}/{}", steps.len());

        let shown = steps.len().min(tail.max(1));
        println!("\nnewest {shown} step records:");
        println!(
            "  {:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
            "t", "created", "arrived", "sched", "commit", "abort", "live"
        );
        for s in &steps[steps.len() - shown..] {
            println!(
                "  {:>10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
                u(s, "t"),
                u(s, "created"),
                u(s, "arrived"),
                u(s, "scheduled"),
                u(s, "committed"),
                u(s, "aborted"),
                u(s, "live_after"),
            );
        }
    }

    if decisions.is_empty() {
        println!("\ndecision tail   : (none attached)");
    } else {
        println!("\ndecision tail ({} newest):", decisions.len());
        for d in &decisions {
            let txn = id_u64(d, "txn");
            let tag = d
                .get("kind")
                .and_then(|k| match k {
                    // Enum-with-fields serializes as {"Variant": {...}}.
                    Value::Object(fields) => fields.first().map(|(name, _)| name.as_str()),
                    Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .unwrap_or("?");
            println!("  t={:<8} txn={txn:<8} {tag}", u(d, "t"));
        }
    }

    if summary.health_events > 0 {
        println!("\nhealth events ({}):", summary.health_events);
        for ev in &health {
            let tag = ev
                .get("kind")
                .and_then(|k| match k {
                    Value::Object(fields) => fields.first().map(|(name, _)| name.as_str()),
                    Value::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .unwrap_or("?");
            println!("  t={:<10} live={:<8} {tag}", u(ev, "t"), u(ev, "live"));
        }
    } else {
        println!("\nhealth events   : none");
    }
}
