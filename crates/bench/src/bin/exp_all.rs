//! Runs the entire experiment suite (E1–E12 and ablations A1–A4).
//! Pass --quick for the reduced grids used in CI.
fn main() {
    let quick = dtm_bench::quick_flag();
    eprintln!("running full experiment suite (quick = {quick})...");
    for table in dtm_bench::experiments::run_all(quick) {
        table.print();
    }
}
