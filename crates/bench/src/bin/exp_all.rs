//! Runs the entire experiment suite (E1–E16 and ablations A1–A5).
//! Pass --quick for the reduced grids used in CI, and --jobs N (or -j N)
//! to fan grid cells across N worker threads. Tables are byte-identical
//! for every N — see EXPERIMENTS.md "Parallel execution".
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    eprintln!(
        "running full experiment suite (quick = {quick}, jobs = {})...",
        rayon::current_num_threads()
    );
    for table in dtm_bench::experiments::run_all(quick) {
        table.print();
    }
}
