//! Offline report over a structured run trace (`run_trace --emit-trace`).
//!
//! ```text
//! cargo run -p dtm-bench --release --bin trace_report -- run.jsonl \
//!     [--top K] [--chrome out.json]
//! # --top K      how many slowest transactions to list (default 10)
//! # --chrome F   additionally write Chrome trace_event JSON (Perfetto:
//! #              ui.perfetto.dev -> Open trace file)
//! ```
//!
//! Prints the headline metrics, the top-K slowest transactions
//! (generation -> commit), log2 histograms of queue wait / time-to-commit
//! / per-object hops, and the sampled per-phase wall-clock breakdown.

use dtm_telemetry::{
    run_names, slowest_transactions, validate_chrome_trace, HistogramSnapshot, MetricsRegistry,
    RunTrace,
};

/// Value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Render the non-empty buckets of a log2 histogram with a count bar.
fn print_histogram(name: &str, h: &HistogramSnapshot) {
    if h.count == 0 {
        println!("{name}: (empty)");
        return;
    }
    println!(
        "{name}: count={} mean={:.2} min={} max={}",
        h.count,
        h.mean(),
        h.min,
        h.max
    );
    let peak = h.buckets.iter().map(|b| b.count).max().unwrap_or(1).max(1);
    for b in &h.buckets {
        if b.count == 0 {
            continue;
        }
        let bar = "#".repeat(((b.count * 40).div_ceil(peak)) as usize);
        println!("  [{:>6}, {:>6}] {:>8} {bar}", b.lo, b.hi, b.count);
    }
}

/// Print `msg` to stderr and exit nonzero. Reports must fail gracefully
/// on bad input — an operator pointing this at a truncated or empty file
/// gets a diagnosis, not a panic.
fn fail(msg: &str) -> ! {
    eprintln!("trace_report: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        fail("usage: trace_report <run.jsonl> [--top K] [--chrome out.json]");
    };
    let top_k: usize = match flag_value(&args, "--top") {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--top takes an integer, got {v:?}"))),
        None => 10,
    };
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if raw.trim().is_empty() {
        fail(&format!("{path} is empty — not a run trace"));
    }
    let trace = RunTrace::from_jsonl(&raw)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid run-trace JSONL: {e}")));

    println!("policy          : {}", trace.policy);
    println!("steps           : {}", trace.metrics.steps);
    println!("committed       : {}", trace.metrics.committed);
    println!("makespan        : {}", trace.metrics.makespan);
    println!("comm cost       : {}", trace.metrics.comm_cost);
    println!("events          : {}", trace.events.len());
    println!("decisions       : {}", trace.decisions.len());
    println!("violations      : {}", trace.violations.len());

    // Slowest transactions by generation -> commit latency.
    let slow = slowest_transactions(&trace, top_k);
    if !slow.is_empty() {
        println!("\nslowest transactions (top {}):", slow.len());
        println!(
            "  {:<8} {:>10} {:>10} {:>10}",
            "txn", "generated", "commit", "latency"
        );
        for (txn, generated, commit) in &slow {
            println!(
                "  {:<8} {:>10} {:>10} {:>10}",
                txn.to_string(),
                generated,
                commit,
                commit - generated
            );
        }
    }

    // Re-derive the registry histograms from the reconstructed run.
    let registry = MetricsRegistry::new();
    dtm_telemetry::record_run(&trace.to_run_result(), &registry);
    let snap = registry.snapshot();
    println!();
    for name in [
        run_names::QUEUE_WAIT,
        run_names::TIME_TO_COMMIT,
        run_names::OBJECT_HOPS,
    ] {
        match snap.histograms.get(name) {
            Some(h) => print_histogram(name, h),
            None => println!("{name}: (missing)"),
        }
    }

    // Sampled per-phase wall-clock breakdown.
    if trace.phases.is_empty() {
        println!("\nphase breakdown : (no sampled spans in trace)");
    } else {
        let mut agg: std::collections::BTreeMap<String, (u64, u64, u64)> = Default::default();
        for span in &trace.phases {
            let e = agg.entry(format!("{:?}", span.phase)).or_default();
            e.0 += 1;
            e.1 += span.items;
            e.2 += span.nanos;
        }
        println!("\nphase breakdown ({} sampled spans):", trace.phases.len());
        println!(
            "  {:<10} {:>8} {:>10} {:>14}",
            "phase", "spans", "items", "nanos"
        );
        for (phase, (spans, items, nanos)) in &agg {
            println!("  {phase:<10} {spans:>8} {items:>10} {nanos:>14}");
        }
    }

    if let Some(out) = flag_value(&args, "--chrome") {
        let chrome = trace.chrome_trace();
        let n = validate_chrome_trace(&chrome)
            .unwrap_or_else(|e| fail(&format!("chrome trace failed validation: {e}")));
        let body = serde_json::to_string(&chrome)
            .unwrap_or_else(|e| fail(&format!("chrome trace failed to serialize: {e}")));
        std::fs::write(&out, body).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("\nchrome trace    : {out} ({n} events) -- load at ui.perfetto.dev");
    }
}
