//! Replay a JSON trace produced by `gen_trace` under a chosen scheduler
//! and report metrics plus the conservative competitive-ratio estimate.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin run_trace -- trace.json [policy] [--timeline]
//! # policy: greedy | bucket | fifo | tsp | distributed (default: greedy)
//! # --timeline additionally renders the per-object ASCII Gantt chart
//! ```

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{Instance, TraceSource};
use dtm_offline::{competitive_ratio, ListScheduler};
use dtm_sim::{
    run_policy, validate_events, EngineConfig, RunResult, SchedulingPolicy, ValidationConfig,
};

fn network_from(name: &str) -> Network {
    match name {
        "clique" => topology::clique(24),
        "line" => topology::line(48),
        "hypercube" => topology::hypercube(5),
        "star" => topology::star(4, 8),
        "cluster" => topology::cluster(4, 5, 6),
        _ => topology::grid(&[6, 6]),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.get(1).expect("usage: run_trace <trace.json> [policy]");
    let policy_name = args.get(2).cloned().unwrap_or_else(|| "greedy".into());
    let raw = std::fs::read_to_string(path).expect("readable trace file");
    let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
    let topo = doc["topology"].as_str().expect("topology field");
    let instance: Instance =
        serde_json::from_value(doc["instance"].clone()).expect("instance field");
    let net = network_from(topo);
    instance.validate(&net).expect("trace matches topology");

    let (res, vcfg): (RunResult, ValidationConfig) = match policy_name.as_str() {
        "bucket" => (
            run_policy(
                &net,
                TraceSource::new(instance),
                Box::new(BucketPolicy::new(ListScheduler::fifo())) as Box<dyn SchedulingPolicy>,
                EngineConfig::default(),
            ),
            ValidationConfig::default(),
        ),
        "fifo" => (
            run_policy(
                &net,
                TraceSource::new(instance),
                Box::new(FifoPolicy::new()),
                EngineConfig::default(),
            ),
            ValidationConfig::default(),
        ),
        "tsp" => (
            run_policy(
                &net,
                TraceSource::new(instance),
                Box::new(TspPolicy),
                EngineConfig::default(),
            ),
            ValidationConfig::default(),
        ),
        "distributed" => (
            run_policy(
                &net,
                TraceSource::new(instance),
                Box::new(DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 7)),
                DistributedBucketPolicy::<ListScheduler>::engine_config(),
            ),
            ValidationConfig {
                speed_divisor: 2,
                ..ValidationConfig::default()
            },
        ),
        _ => (
            run_policy(
                &net,
                TraceSource::new(instance),
                Box::new(GreedyPolicy::new()),
                EngineConfig::default(),
            ),
            ValidationConfig::default(),
        ),
    };
    res.expect_ok();
    validate_events(&net, &res, &vcfg).expect("execution validates");
    let ratio = competitive_ratio(&net, &res);
    println!("policy          : {}", res.policy);
    println!("topology        : {}", net.name());
    println!("committed       : {}", res.metrics.committed);
    println!("makespan        : {}", res.metrics.makespan);
    println!("mean latency    : {:.2}", res.metrics.latency.mean);
    println!("p95 latency     : {}", res.metrics.latency.p95);
    println!("max latency     : {}", res.metrics.latency.max);
    println!("comm cost       : {}", res.metrics.comm_cost);
    println!("ratio (vs LB)   : {:.2}", ratio.max_ratio);
    if args.iter().any(|a| a == "--timeline") {
        println!();
        print!(
            "{}",
            dtm_sim::render_timeline(&res, &dtm_sim::TimelineOptions::default())
        );
    }
}
