//! Replay a JSON trace produced by `gen_trace` under a chosen scheduler
//! and report metrics plus the conservative competitive-ratio estimate.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin run_trace -- trace.json [policy] \
//!     [--timeline] [--emit-trace run.jsonl]
//! # policy: greedy | bucket | fifo | tsp | distributed (default: greedy)
//! # --timeline additionally renders the per-object ASCII Gantt chart
//! # --emit-trace writes the full structured run trace (JSONL) for
//! #   trace_report / Perfetto conversion
//! ```

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{Instance, TraceSource};
use dtm_offline::{competitive_ratio, ListScheduler};
use dtm_sim::{
    validate_events, Engine, EngineConfig, RunResult, SchedulingPolicy, ValidationConfig,
};
use dtm_telemetry::{decision_trace, MetricsRegistry, RunTrace, TelemetrySink};
use parking_lot::Mutex;
use std::sync::Arc;

fn network_from(name: &str) -> Network {
    match name {
        "clique" => topology::clique(24),
        "line" => topology::line(48),
        "hypercube" => topology::hypercube(5),
        "star" => topology::star(4, 8),
        "cluster" => topology::cluster(4, 5, 6),
        _ => topology::grid(&[6, 6]),
    }
}

/// Value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_with_observers(
    net: &Network,
    instance: Instance,
    policy: Box<dyn SchedulingPolicy>,
    config: EngineConfig,
    sink: Option<Arc<Mutex<TelemetrySink>>>,
) -> RunResult {
    let mut engine = Engine::new(net.clone(), policy, config);
    if let Some(sink) = sink {
        engine = engine.with_observer(sink);
    }
    engine.run(TraceSource::new(instance))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.get(1).expect("usage: run_trace <trace.json> [policy]");
    let policy_name = args.get(2).cloned().unwrap_or_else(|| "greedy".into());
    let emit_trace = flag_value(&args, "--emit-trace");
    let raw = std::fs::read_to_string(path).expect("readable trace file");
    let doc: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
    let topo = doc["topology"].as_str().expect("topology field");
    let instance: Instance =
        serde_json::from_value(doc["instance"].clone()).expect("instance field");
    let net = network_from(topo);
    instance.validate(&net).expect("trace matches topology");

    // Observability side channels: only attached when a structured trace
    // was requested, so the plain replay path stays identical to before.
    let registry = Arc::new(MetricsRegistry::new());
    let decisions = decision_trace();
    let sink = emit_trace
        .as_ref()
        .map(|_| Arc::new(Mutex::new(TelemetrySink::new(Arc::clone(&registry)))));
    let trace_on = emit_trace.is_some();
    let dt = |on: bool| on.then(|| Arc::clone(&decisions));

    let (policy, config, vcfg): (Box<dyn SchedulingPolicy>, EngineConfig, ValidationConfig) =
        match policy_name.as_str() {
            "bucket" => {
                let mut p = BucketPolicy::new(ListScheduler::fifo());
                if let Some(d) = dt(trace_on) {
                    p = p.with_decision_trace(d);
                }
                (
                    Box::new(p),
                    EngineConfig::default(),
                    ValidationConfig::default(),
                )
            }
            "fifo" => {
                let mut p = FifoPolicy::new();
                if let Some(d) = dt(trace_on) {
                    p = p.with_decision_trace(d);
                }
                (
                    Box::new(p),
                    EngineConfig::default(),
                    ValidationConfig::default(),
                )
            }
            "tsp" => {
                let mut p = TspPolicy::new();
                if let Some(d) = dt(trace_on) {
                    p = p.with_decision_trace(d);
                }
                (
                    Box::new(p),
                    EngineConfig::default(),
                    ValidationConfig::default(),
                )
            }
            "distributed" => {
                let mut p = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 7);
                if let Some(d) = dt(trace_on) {
                    p = p.with_decision_trace(d);
                }
                (
                    Box::new(p),
                    DistributedBucketPolicy::<ListScheduler>::engine_config(),
                    ValidationConfig {
                        speed_divisor: 2,
                        ..ValidationConfig::default()
                    },
                )
            }
            _ => {
                let mut p = GreedyPolicy::new();
                if let Some(d) = dt(trace_on) {
                    p = p.with_decision_trace(d);
                }
                (
                    Box::new(p),
                    EngineConfig::default(),
                    ValidationConfig::default(),
                )
            }
        };

    let res = run_with_observers(&net, instance, policy, config, sink.clone());
    res.expect_ok();
    validate_events(&net, &res, &vcfg).expect("execution validates");
    let ratio = competitive_ratio(&net, &res);
    println!("policy          : {}", res.policy);
    println!("topology        : {}", net.name());
    println!("committed       : {}", res.metrics.committed);
    println!("makespan        : {}", res.metrics.makespan);
    println!("mean latency    : {:.2}", res.metrics.latency.mean);
    println!("p95 latency     : {}", res.metrics.latency.p95);
    println!("max latency     : {}", res.metrics.latency.max);
    println!("comm cost       : {}", res.metrics.comm_cost);
    println!("ratio (vs LB)   : {:.2}", ratio.max_ratio);
    if let Some(out) = emit_trace {
        let phases = sink.map(|s| s.lock().take_spans()).unwrap_or_default();
        let trace = RunTrace::from_run(&res, phases, Some(&decisions.lock()));
        std::fs::write(&out, trace.to_jsonl()).expect("trace file writable");
        println!(
            "trace           : {out} ({} events, {} decisions, {} phase spans)",
            trace.events.len(),
            trace.decisions.len(),
            trace.phases.len()
        );
    }
    if args.iter().any(|a| a == "--timeline") {
        println!();
        print!(
            "{}",
            dtm_sim::render_timeline(&res, &dtm_sim::TimelineOptions::default())
        );
    }
}
