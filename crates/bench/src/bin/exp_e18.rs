//! E18 — substrate scale-decade sweep: CSR spine, routing-oracle tiers
//! and open-system runs on 10²–10⁵-node networks.

fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e18_substrate_scale::run(quick) {
        table.print();
    }
}
