//! Experiment binary: E3 clique O(k). Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e3_clique::run(quick) {
        table.print();
    }
}
