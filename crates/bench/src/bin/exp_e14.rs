//! Experiment binary: E14 seed-variance robustness study.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e14_variance::run(quick) {
        table.print();
    }
}
