//! Experiment binary: E4/E5 hypercube, butterfly, grid. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e4_small_diameter::run(quick) {
        table.print();
    }
}
