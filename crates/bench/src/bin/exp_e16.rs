//! Experiment binary: E16 idealized vs message-level Algorithm 3.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e16_message_level::run(quick) {
        table.print();
    }
}
