//! Generate a workload trace as JSON, for sharing and replay.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin gen_trace -- \
//!     [topology] [num_objects] [k] [rate] [horizon] [seed] > trace.json
//! # defaults: grid 12 2 0.2 30 1
//! ```
//!
//! Replay with `run_trace`.

use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};

fn network_from(name: &str) -> Network {
    match name {
        "clique" => topology::clique(24),
        "line" => topology::line(48),
        "hypercube" => topology::hypercube(5),
        "star" => topology::star(4, 8),
        "cluster" => topology::cluster(4, 5, 6),
        _ => topology::grid(&[6, 6]),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |i: usize, default: &str| args.get(i).cloned().unwrap_or_else(|| default.into());
    let topo = get(1, "grid");
    let num_objects: u32 = get(2, "12").parse().expect("num_objects");
    let k: usize = get(3, "2").parse().expect("k");
    let rate: f64 = get(4, "0.2").parse().expect("rate");
    let horizon: u64 = get(5, "30").parse().expect("horizon");
    let seed: u64 = get(6, "1").parse().expect("seed");

    let net = network_from(&topo);
    let spec = WorkloadSpec {
        num_objects,
        k,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli { rate, horizon },
    };
    let instance = WorkloadGenerator::new(spec, seed).generate(&net);
    instance
        .validate(&net)
        .expect("generated instance is valid");
    eprintln!(
        "generated {} transactions / {} objects on {}",
        instance.num_txns(),
        instance.num_objects(),
        net.name()
    );
    // Emit {topology, instance} so run_trace can rebuild the same network.
    let doc = serde_json::json!({
        "topology": topo,
        "instance": instance,
    });
    println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
}
