//! Experiment binary: E8 line polylog. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e8_line::run(quick) {
        table.print();
    }
}
