//! Experiment binary: E11 distributed overhead. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e11_distributed::run(quick) {
        table.print();
    }
}
