//! Characterize the workloads the experiment suite runs on: the
//! structural quantities (`k`, `l_max`, conflict degrees, popularity skew)
//! that the paper's bounds are stated in, for each canonical spec.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin exp_workloads
//! ```

use dtm_bench::Table;
use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};

fn main() {
    let mut t = Table::new(
        "Workload characterization (seed 1 of each canonical spec)",
        &[
            "workload",
            "txns",
            "objs",
            "k max",
            "l_max",
            "conflict edges",
            "max degree",
            "gini",
        ],
    );
    let cases: Vec<(&str, Network, WorkloadSpec)> = vec![
        (
            "E3 clique batch k=4",
            topology::clique(64),
            WorkloadSpec::batch_uniform(64, 4),
        ),
        (
            "E8 line bernoulli",
            topology::line(128),
            WorkloadSpec {
                num_objects: 32,
                k: 2,
                object_choice: ObjectChoice::Uniform,
                arrival: FiniteArrivals::Bernoulli {
                    rate: 2.0 / 128.0,
                    horizon: 128,
                },
            },
        ),
        (
            "E12b grid zipf load",
            topology::grid(&[6, 6]),
            WorkloadSpec {
                num_objects: 12,
                k: 2,
                object_choice: ObjectChoice::Zipf { exponent: 0.8 },
                arrival: FiniteArrivals::Bernoulli {
                    rate: 0.2,
                    horizon: 40,
                },
            },
        ),
        (
            "A4 grid hotspot",
            topology::grid(&[6, 6]),
            WorkloadSpec {
                num_objects: 18,
                k: 2,
                object_choice: ObjectChoice::Hotspot {
                    hot_objects: 2,
                    hot_prob: 0.5,
                },
                arrival: FiniteArrivals::Bernoulli {
                    rate: 0.2,
                    horizon: 20,
                },
            },
        ),
        (
            "NoC mesh locality",
            topology::grid(&[8, 8]),
            WorkloadSpec {
                num_objects: 64,
                k: 2,
                object_choice: ObjectChoice::Neighborhood { radius: 2 },
                arrival: FiniteArrivals::Bernoulli {
                    rate: 0.15,
                    horizon: 50,
                },
            },
        ),
    ];
    for (name, net, spec) in cases {
        let inst = WorkloadGenerator::new(spec, 1).generate(&net);
        let s = inst.stats();
        t.row(vec![
            name.to_string(),
            s.txns.to_string(),
            s.objects_used.to_string(),
            s.k_max.to_string(),
            s.l_max.to_string(),
            s.conflict_edges.to_string(),
            s.max_conflict_degree.to_string(),
            format!("{:.2}", s.popularity_gini),
        ]);
    }
    t.print();
}
