//! Experiment binary: E1/E2 greedy theorem bounds. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e1_greedy_bound::run(quick) {
        table.print();
    }
}
