//! Experiment binary: E13 batch approximation ratios vs exact OPT.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e13_batch_quality::run(quick) {
        table.print();
    }
}
