//! CI smoke test for the open-system streaming path: run a short seeded
//! Poisson stream through every policy in release mode, assert the live
//! set stays bounded and the kernel shuts down cleanly, and print one
//! summary line per policy. Exits nonzero on any violation.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin stream_smoke
//! ```

use dtm_bench::run_stream;
use dtm_core::{
    BucketPolicy, DistributedBucketPolicy, DistributedMsgPolicy, FifoPolicy, GreedyPolicy,
    TspPolicy,
};
use dtm_graph::topology;
use dtm_model::{ArrivalProcess, OpenLoopSource, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::{EngineConfig, SchedulingPolicy};

const STEPS: u64 = 5_000;
const WARMUP: u64 = 1_000;
const RATE: f64 = 0.3;

fn main() {
    dtm_bench::init_jobs();
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(GreedyPolicy::new()),
        Box::new(BucketPolicy::new(ListScheduler::fifo())),
        Box::new(FifoPolicy::new()),
        Box::new(TspPolicy::new()),
        Box::new(DistributedBucketPolicy::new(
            &net,
            ListScheduler::fifo(),
            31,
        )),
        Box::new(DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 31)),
    ];
    let mut failures = 0usize;
    println!(
        "stream_smoke: {STEPS} steps of Poisson ρ={RATE} on {}",
        net.name()
    );
    for policy in policies {
        let source = OpenLoopSource::new(
            net.clone(),
            spec.clone(),
            ArrivalProcess::Poisson { rate: RATE },
            2026,
        );
        let s = run_stream(&net, source, policy, EngineConfig::default(), STEPS, WARMUP);
        // Clean shutdown = the run reached STEPS with a bounded live set
        // and real throughput; the arena never outgrew the peak backlog.
        let bounded = s.arena_high_water <= s.backlog_peak && s.backlog_peak < 2_000;
        let productive = s.committed as u64 > (STEPS as f64 * RATE * 0.5) as u64;
        let ok = bounded && productive && s.is_stable(0.05);
        if !ok {
            failures += 1;
        }
        println!(
            "  {:<28} committed={:<6} backlog_end={:<5} peak={:<5} arena_hwm={:<5} slope={:+.4} p95={:<5} {}",
            s.policy,
            s.committed,
            s.backlog_end,
            s.backlog_peak,
            s.arena_high_water,
            s.backlog_slope,
            s.p95_latency,
            if ok { "ok" } else { "FAIL" }
        );
    }
    if failures > 0 {
        eprintln!("stream_smoke: {failures} polic(ies) failed");
        std::process::exit(1);
    }
    println!("stream_smoke: all policies bounded and stable");
}
