//! Long-haul soak runner for the open-system engine, with the full
//! continuous-observability stack attached: flight recorder (K-step
//! black box), health watchdogs, and periodic metrics exposition.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin long_haul -- \
//!     [--steps N] [--rate R] [--out DIR] [--policy NAME] [--source KIND] \
//!     [--flight-k K] [--expose-every N] [--expect-overload]
//! # --steps N          steps per run (default 1_000_000)
//! # --rate R           arrival rate ρ (default 0.3)
//! # --out DIR          artifact directory (default long-haul-artifacts)
//! # --policy NAME      run only this policy (default: all six)
//! # --source KIND      poisson | adversarial (default: both)
//! # --flight-k K       flight-recorder ring size (default 1024)
//! # --expose-every N   live-metrics flush cadence (default steps/100)
//! # --expect-overload  invert the verdict: the run must trip the
//! #                    overload watchdog (used by the CI health smoke)
//! ```
//!
//! Each (policy, source) cell drives `run_stream_observed` on a
//! clique(8); verdicts check bounded memory (`arena_hwm <= peak_live`)
//! and — unless `--expect-overload` — that no health watchdog fired.
//! Every cell writes `<policy>-<source>.flight.jsonl` (plus an
//! `.onset.flight.jsonl` at the first health event) into `--out`, so a
//! failing CI job uploads the black boxes as artifacts. Exits nonzero
//! on any failed verdict.

use dtm_bench::{run_stream_observed, ObserveSpec};
use dtm_core::{
    BucketPolicy, DistributedBucketPolicy, DistributedMsgPolicy, FifoPolicy, GreedyPolicy,
    TspPolicy,
};
use dtm_graph::topology;
use dtm_model::{ArrivalProcess, OpenLoopSource, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::{EngineConfig, SchedulingPolicy};
use std::path::PathBuf;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("long_haul: {msg}");
    std::process::exit(2);
}

const POLICIES: [&str; 6] = ["greedy", "bucket", "fifo", "tsp", "dist-bucket", "dist-msg"];

fn policy_for(name: &str, net: &dtm_graph::Network) -> Box<dyn SchedulingPolicy> {
    match name {
        "greedy" => Box::new(GreedyPolicy::new()),
        "bucket" => Box::new(BucketPolicy::new(ListScheduler::fifo())),
        "fifo" => Box::new(FifoPolicy::new()),
        "tsp" => Box::new(TspPolicy::new()),
        "dist-bucket" => Box::new(DistributedBucketPolicy::new(net, ListScheduler::fifo(), 31)),
        "dist-msg" => Box::new(DistributedMsgPolicy::new(net, ListScheduler::fifo(), 31)),
        other => fail_usage(&format!(
            "unknown --policy {other:?} (expected one of {POLICIES:?})"
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: u64 = flag_value(&args, "--steps")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage("--steps takes an integer"))
        })
        .unwrap_or(1_000_000);
    let rate: f64 = flag_value(&args, "--rate")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage("--rate takes a number"))
        })
        .unwrap_or(0.3);
    let out = PathBuf::from(
        flag_value(&args, "--out").unwrap_or_else(|| "long-haul-artifacts".to_string()),
    );
    let flight_k: usize = flag_value(&args, "--flight-k")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage("--flight-k takes an integer"))
        })
        .unwrap_or(1024);
    let expose_every: u64 = flag_value(&args, "--expose-every")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage("--expose-every takes an integer"))
        })
        .unwrap_or_else(|| (steps / 100).max(1));
    let expect_overload = args.iter().any(|a| a == "--expect-overload");
    let only_policy = flag_value(&args, "--policy");
    let only_source = flag_value(&args, "--source");

    let warmup = (steps / 5).max(1).min(steps - 1);
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let policies: Vec<&str> = match &only_policy {
        Some(p) => vec![p.as_str()],
        None => POLICIES.to_vec(),
    };
    let sources: Vec<&str> = match only_source.as_deref() {
        Some("poisson") => vec!["poisson"],
        Some("adversarial") => vec!["adversarial"],
        Some(other) => fail_usage(&format!(
            "unknown --source {other:?} (expected poisson | adversarial)"
        )),
        None => vec!["poisson", "adversarial"],
    };

    println!(
        "long_haul: {steps} steps, ρ={rate}, {} x {} cells on {}, artifacts in {}",
        policies.len(),
        sources.len(),
        net.name(),
        out.display()
    );
    let mut failures = 0usize;
    for policy_name in &policies {
        for source_name in &sources {
            let process = match *source_name {
                "poisson" => ArrivalProcess::Poisson { rate },
                _ => ArrivalProcess::Adversarial { rate },
            };
            let source = OpenLoopSource::new(net.clone(), spec.clone(), process, 2026);
            let spec_obs = ObserveSpec {
                health: Some(dtm_telemetry::HealthConfig::default()),
                flight_k: Some(flight_k),
                expose_every: Some(expose_every),
                dir: out.clone(),
                label: format!("{policy_name}-{source_name}"),
                arena_probe_every: 256,
            };
            let (s, obs) = run_stream_observed(
                &net,
                source,
                policy_for(policy_name, &net),
                EngineConfig::default(),
                steps,
                warmup,
                &spec_obs,
            );
            let bounded = s.arena_high_water <= s.backlog_peak;
            let overloaded = obs.health_events.iter().any(|e| e.kind.tag() == "overload");
            let healthy = obs.is_healthy();
            let ok = bounded
                && if expect_overload {
                    overloaded
                } else {
                    healthy && s.is_stable(0.05)
                };
            if !ok {
                failures += 1;
            }
            println!(
                "  {:<28} {:<12} committed={:<8} peak={:<6} arena_hwm={:<6} slope={:+.4} events={:<3} flushes={:<4} {}",
                s.policy,
                source_name,
                s.committed,
                s.backlog_peak,
                s.arena_high_water,
                s.backlog_slope,
                obs.health_events.len(),
                obs.expose_flushes,
                if ok { "ok" } else { "FAIL" }
            );
            for ev in obs.health_events.iter().take(4) {
                println!(
                    "      health: t={} live={} {}",
                    ev.t,
                    ev.live,
                    ev.kind.tag()
                );
            }
            if let Some(e) = &obs.io_error {
                eprintln!("      io error: {e}");
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "long_haul: {failures} cell(s) failed — flight dumps in {}",
            out.display()
        );
        std::process::exit(1);
    }
    println!("long_haul: all cells passed");
}
