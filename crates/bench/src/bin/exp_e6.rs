//! Experiment binary: E6/E7 bucket lemmas. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e6_bucket_lemmas::run(quick) {
        table.print();
    }
}
