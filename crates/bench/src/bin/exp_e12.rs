//! Experiment binary: E12 shootout and load sweep. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e12_shootout::run(quick) {
        table.print();
    }
}
