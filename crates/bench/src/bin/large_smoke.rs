//! Release-mode large-graph smoke test: a 10⁵-node random-geometric
//! network (landmark routing tier) driven for 1000 engine steps under
//! `Retention::Streaming` with the edge-telemetry workload. Asserts the
//! landmark oracle builds, the kernel stays memory-bounded (the arena
//! never outgrows the peak live set, the backlog stays small) and the
//! run shuts down cleanly with real throughput. Exits nonzero on any
//! violation.
//!
//! ```text
//! cargo run -p dtm-bench --release --bin large_smoke
//! ```

use dtm_bench::run_stream;
use dtm_core::{FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::{presets, ArrivalProcess, OpenLoopSource};
use dtm_sim::{EngineConfig, SchedulingPolicy};

const NODES: u32 = 100_000;
const STEPS: u64 = 1_000;
const WARMUP: u64 = 250;
const RATE: f64 = 1.0;

fn main() {
    dtm_bench::init_jobs();
    let net = topology::geometric(NODES, 4, 18);
    println!(
        "large_smoke: {} — n={} edges={} tier={} diameter<={} slack<={}",
        net.name(),
        net.n(),
        net.graph().edge_count(),
        net.routing_tier(),
        net.diameter(),
        net.distance_slack(),
    );
    assert_eq!(net.routing_tier(), "landmark");

    // Locality radius = base + the landmark tier's advertised additive
    // slack: reported distances overestimate by up to `slack`, so the
    // neighborhood filter must widen by the same amount to keep truly
    // nearby objects eligible.
    let radius = 48 + net.distance_slack();
    let spec = presets::edge_sensors(NODES, 5, radius, 0.0, 0);
    let policies: Vec<Box<dyn SchedulingPolicy>> =
        vec![Box::new(GreedyPolicy::new()), Box::new(FifoPolicy::new())];
    let mut failures = 0usize;
    for policy in policies {
        let source = OpenLoopSource::new(
            net.clone(),
            spec.clone(),
            ArrivalProcess::Poisson { rate: RATE },
            2026,
        );
        let s = run_stream(&net, source, policy, EngineConfig::default(), STEPS, WARMUP);
        // Bounded memory: live-set slots are recycled (the arena high
        // water never exceeds the peak backlog) and the backlog itself
        // stays far below anything O(n). Clean shutdown: the run reached
        // STEPS, retired its history, and committed real work. No slope
        // gate: at this horizon sojourn times (a few hundred steps of
        // object transit) are comparable to the run length, so the
        // backlog is still ramping toward its bounded plateau ~= rate x
        // sojourn; the peak cap is the unboundedness check.
        let bounded = s.arena_high_water <= s.backlog_peak && s.backlog_peak < 2_000;
        let productive = s.committed as u64 > (STEPS as f64 * RATE * 0.2) as u64;
        let ok = bounded && productive;
        if !ok {
            failures += 1;
        }
        println!(
            "  {:<28} committed={:<6} backlog_end={:<5} peak={:<5} arena_hwm={:<5} slope={:+.4} p95={:<5} {}",
            s.policy,
            s.committed,
            s.backlog_end,
            s.backlog_peak,
            s.arena_high_water,
            s.backlog_slope,
            s.p95_latency,
            if ok { "ok" } else { "FAIL" }
        );
    }
    if failures > 0 {
        eprintln!("large_smoke: {failures} polic(ies) failed");
        std::process::exit(1);
    }
    println!("large_smoke: bounded memory and clean shutdown at n={NODES}");
}
