//! E17 — open-system stability: backlog-growth knee and steady-state
//! latency per policy under sustained Poisson arrivals.

fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e17_stability::run(quick) {
        table.print();
    }
}
