//! Experiment binary: A1-A4 ablations. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::ablations::run(quick) {
        table.print();
    }
}
