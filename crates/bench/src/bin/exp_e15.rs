//! Experiment binary: E15 application benchmarks.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e15_applications::run(quick) {
        table.print();
    }
}
