//! Experiment binary: E10 star. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e10_star::run(quick) {
        table.print();
    }
}
