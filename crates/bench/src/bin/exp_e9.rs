//! Experiment binary: E9 cluster. Pass --quick for the reduced grid.
fn main() {
    dtm_bench::init_jobs();
    let quick = dtm_bench::quick_flag();
    for table in dtm_bench::experiments::e9_cluster::run(quick) {
        table.print();
    }
}
