//! Shared experiment runner: executes a policy on a workload, validates
//! the event log, and condenses metrics + a conservative competitive-ratio
//! estimate into one [`Summary`] row.
//!
//! Runs are safe to execute concurrently (the [`crate::ParallelGrid`]
//! fan-out): nothing here mutates process-global state, and telemetry
//! sidecars are named by **run identity** — experiment scope, policy,
//! network, seed, and a workload/config fingerprint — never by arrival
//! order, so a suite writes the same file set at any `--jobs` level and
//! across repeated runs.

use dtm_graph::Network;
use dtm_model::{ClosedLoopSource, Instance, Time, TraceSource, WorkloadSource, WorkloadSpec};
use dtm_offline::competitive_ratio;
use dtm_sim::{
    run_policy, validate_events, Engine, EngineConfig, Retention, RunResult, SchedulingPolicy,
    ValidationConfig,
};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

/// A workload to run.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Replay a pre-generated instance at its recorded times.
    Trace(Instance),
    /// Closed loop (Section III-C): every node keeps one transaction
    /// outstanding for `rounds` rounds.
    ClosedLoop {
        /// Workload spec (objects, k, popularity).
        spec: WorkloadSpec,
        /// Rounds per node.
        rounds: u32,
        /// Seed.
        seed: u64,
    },
}

/// One result row.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Policy name.
    pub policy: String,
    /// Nodes in the network.
    pub n: usize,
    /// Committed transactions.
    pub txns: usize,
    /// Total execution time.
    pub makespan: Time,
    /// Worst per-transaction latency.
    pub max_latency: Time,
    /// Mean latency.
    pub mean_latency: f64,
    /// Total weighted distance traveled by objects.
    pub comm_cost: u64,
    /// Conservative competitive-ratio estimate (see `dtm_offline::ratio`).
    pub ratio: f64,
    /// Peak concurrent objects on any single edge (congestion).
    pub peak_edge_load: u32,
}

/// Run `policy` on `workload` over `network`, validate, and summarize.
/// Telemetry sidecars go to the process-wide `--telemetry` directory
/// ([`crate::telemetry_flag`]) when that flag is set.
///
/// # Panics
/// Panics if the run has violations or fails event validation — an
/// experiment on a broken scheduler must fail loudly, not report numbers.
pub fn run_summary<P: SchedulingPolicy>(
    network: &Network,
    workload: WorkloadKind,
    policy: P,
    config: EngineConfig,
) -> Summary {
    run_summary_with(network, workload, policy, config, crate::telemetry_flag())
}

/// [`run_summary`] with an explicit sidecar directory (`None` disables
/// sidecars). Tests use this to exercise the telemetry path without
/// touching process-global flags.
pub fn run_summary_with<P: SchedulingPolicy>(
    network: &Network,
    workload: WorkloadKind,
    policy: P,
    config: EngineConfig,
    telemetry_dir: Option<PathBuf>,
) -> Summary {
    let mut config = config;
    config.record_events = true;
    // Identity is taken before the workload is consumed so the sidecar
    // name never depends on anything the run computed.
    let identity = telemetry_dir
        .is_some()
        .then(|| RunIdentity::of(&workload, &config));
    let result = match workload {
        WorkloadKind::Trace(instance) => {
            instance.validate(network).expect("valid instance");
            run_policy(network, TraceSource::new(instance), policy, config.clone())
        }
        WorkloadKind::ClosedLoop { spec, rounds, seed } => {
            let src = ClosedLoopSource::new(network.clone(), spec, rounds, seed);
            run_policy(network, src, policy, config.clone())
        }
    };
    result.expect_ok();
    let vcfg = ValidationConfig {
        speed_divisor: config.speed_divisor,
        link_capacity: config.link_capacity,
        allow_late_execution: config.allow_late_execution,
        require_all_committed: true,
    };
    validate_events(network, &result, &vcfg)
        .unwrap_or_else(|e| panic!("event validation failed for {}: {e}", result.policy));
    let ratio = competitive_ratio(network, &result);
    let peak_edge_load = dtm_sim::peak_congestion(&result);
    if let Some(dir) = telemetry_dir {
        let identity = identity.expect("identity computed when sidecars are on");
        write_metrics_sidecar(
            &dir,
            &identity.file_stem(&result.policy, network),
            network,
            &result,
        )
        .expect("telemetry sidecar writable");
    }
    Summary {
        policy: result.policy.clone(),
        n: network.n(),
        txns: result.metrics.committed,
        makespan: result.metrics.makespan,
        max_latency: result.metrics.latency.max,
        mean_latency: result.metrics.latency.mean,
        comm_cost: result.metrics.comm_cost,
        ratio: ratio.max_ratio,
        peak_edge_load,
    }
}

/// One open-system (streaming) result row: what a bounded-memory run can
/// report without per-transaction history. Backlog statistics split the
/// post-warmup window in half; a positive [`StreamSummary::backlog_slope`]
/// (live transactions gained per step between the two half-window means)
/// is the overload signature, a slope near zero means the system is
/// stable at this arrival rate.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// Policy name.
    pub policy: String,
    /// Nodes in the network.
    pub n: usize,
    /// Steps simulated.
    pub steps: Time,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (missed executions).
    pub aborted: u64,
    /// Live transactions when the run stopped.
    pub backlog_end: usize,
    /// Peak live transactions.
    pub backlog_peak: usize,
    /// Transaction-arena slot high-water mark (bounded-memory witness:
    /// never exceeds `backlog_peak` however many transactions streamed).
    pub arena_high_water: usize,
    /// Mean backlog over the first post-warmup half-window.
    pub backlog_early_mean: f64,
    /// Mean backlog over the second post-warmup half-window.
    pub backlog_late_mean: f64,
    /// Backlog growth per step between the two half-window means.
    pub backlog_slope: f64,
    /// Steady-state sojourn latency, 50th percentile.
    pub p50_latency: Time,
    /// Steady-state sojourn latency, 95th percentile.
    pub p95_latency: Time,
    /// Steady-state sojourn latency, maximum.
    pub max_latency: Time,
    /// Steady-state sojourn latency, mean.
    pub mean_latency: f64,
}

impl StreamSummary {
    /// Stability verdict: backlog not growing faster than `tol` live
    /// transactions per step between the two post-warmup half-windows.
    pub fn is_stable(&self, tol: f64) -> bool {
        self.backlog_slope <= tol
    }
}

/// What a streaming run should observe and where its artifacts land.
/// Built from the process-wide [`crate::obs_flags`] by [`run_stream`] /
/// [`run_stream_labeled`], or constructed directly (tests, `long_haul`).
#[derive(Clone, Debug)]
pub struct ObserveSpec {
    /// Attach the [`dtm_telemetry::HealthMonitor`] watchdogs.
    pub health: Option<dtm_telemetry::HealthConfig>,
    /// Attach a K-step [`dtm_telemetry::FlightRecorder`]; its dump is
    /// written at the end of the run as `<label>.flight.jsonl` (plus an
    /// onset dump `<label>.onset.flight.jsonl` at the first health
    /// event, when the monitor is also attached).
    pub flight_k: Option<usize>,
    /// Flush live metrics every N steps as `<label>.live.json` +
    /// `<label>.prom`.
    pub expose_every: Option<u64>,
    /// Directory artifacts are written into (created on demand).
    pub dir: PathBuf,
    /// Unique file-stem for this run's artifacts. Callers running many
    /// cells (e.g. a rate sweep) must make this distinguish every cell —
    /// the flight/exposition writers overwrite by name.
    pub label: String,
    /// Feed [`dtm_telemetry::HealthMonitor::probe_arena`] from
    /// [`dtm_sim::StepKernel::vitals`] every this many steps (0 = never).
    pub arena_probe_every: u64,
}

impl ObserveSpec {
    /// Spec from the process-wide flags; `None` when no flag is on.
    /// Artifacts go to the `--telemetry` directory when that flag is
    /// set, else `observability/`.
    pub fn from_flags(label: &str) -> Option<ObserveSpec> {
        let flags = crate::obs_flags();
        if !flags.any() {
            return None;
        }
        Some(ObserveSpec {
            health: flags.health.then(dtm_telemetry::HealthConfig::default),
            flight_k: flags.flight_k,
            expose_every: flags.expose_every,
            dir: crate::telemetry_flag().unwrap_or_else(|| PathBuf::from("observability")),
            label: slug(label),
            arena_probe_every: 256,
        })
    }
}

/// What the attached observers saw during one streaming run.
#[derive(Clone, Debug, Default)]
pub struct StreamObservation {
    /// Health events, in emission order (empty when no monitor).
    pub health_events: Vec<dtm_telemetry::HealthEvent>,
    /// Health emissions dropped past the event cap.
    pub health_suppressed: u64,
    /// Final flight dump path, when a recorder was attached and wrote.
    pub flight_dump: Option<PathBuf>,
    /// Onset dump path, when the monitor auto-dumped at its first event.
    pub onset_dump: Option<PathBuf>,
    /// Exposition flushes completed.
    pub expose_flushes: u64,
    /// First I/O error any artifact writer hit (runs never panic on it).
    pub io_error: Option<String>,
}

impl StreamObservation {
    /// True when no watchdog fired and every artifact write succeeded.
    pub fn is_healthy(&self) -> bool {
        self.health_events.is_empty() && self.health_suppressed == 0 && self.io_error.is_none()
    }
}

/// Drive `policy` against a (typically never-exhausting) `source` for
/// exactly `steps` steps under [`Retention::Streaming`] and summarize the
/// steady state. The closed-batch [`run_summary`] panics on violations
/// and insists every transaction commits — meaningless for an open
/// system, which by design stops with transactions still in flight; this
/// helper instead reports backlog trajectory, bounded-memory high-water
/// marks and post-warmup sojourn percentiles. Fully deterministic for a
/// deterministic source/policy, at any `--jobs` level.
///
/// When any [`crate::obs_flags`] switch is on, the continuous-observability
/// stack (recorder / health monitor / exposer) rides along, with artifact
/// names derived from the sidecar scope + policy + network; callers whose
/// cells differ in more than that (e.g. a rate sweep) must use
/// [`run_stream_labeled`] to keep artifact names unique.
pub fn run_stream<P: SchedulingPolicy, S: WorkloadSource>(
    network: &Network,
    source: S,
    policy: P,
    config: EngineConfig,
    steps: Time,
    warmup: Time,
) -> StreamSummary {
    let label = format!(
        "{}-{}-{}",
        current_sidecar_scope(),
        policy.name(),
        network.name()
    );
    run_stream_labeled(&label, network, source, policy, config, steps, warmup)
}

/// [`run_stream`] with an explicit artifact label: `label` (slugged)
/// names every observability artifact this run writes, so sweep callers
/// can encode the full cell identity (rate, source kind, …) and keep
/// parallel cells from colliding. With no observability flag on, the
/// label is unused and this is exactly [`run_stream`].
pub fn run_stream_labeled<P: SchedulingPolicy, S: WorkloadSource>(
    label: &str,
    network: &Network,
    source: S,
    policy: P,
    config: EngineConfig,
    steps: Time,
    warmup: Time,
) -> StreamSummary {
    match ObserveSpec::from_flags(label) {
        Some(spec) => run_stream_observed(network, source, policy, config, steps, warmup, &spec).0,
        None => run_stream_inner(network, source, policy, config, steps, warmup, None).0,
    }
}

/// [`run_stream`] with the continuous-observability stack attached per
/// `spec`, returning what the observers saw alongside the summary.
/// Attaching observers never changes the summary — they are passive —
/// so the table a sweep prints is byte-identical with or without them.
pub fn run_stream_observed<P: SchedulingPolicy, S: WorkloadSource>(
    network: &Network,
    source: S,
    policy: P,
    config: EngineConfig,
    steps: Time,
    warmup: Time,
    spec: &ObserveSpec,
) -> (StreamSummary, StreamObservation) {
    let (summary, obs) =
        run_stream_inner(network, source, policy, config, steps, warmup, Some(spec));
    (summary, obs.unwrap_or_default())
}

/// Observer handles riding one streaming run.
struct ObserveAttach {
    recorder: Option<dtm_telemetry::FlightRecorderHandle>,
    monitor: Option<dtm_telemetry::HealthMonitorHandle>,
    /// Sink + steady probe feeding the exposed registry (attached to the
    /// engine, only read back through the exposer's snapshots).
    sink: Option<std::sync::Arc<parking_lot::Mutex<dtm_telemetry::TelemetrySink>>>,
    probe: Option<std::sync::Arc<parking_lot::Mutex<dtm_telemetry::SteadyStateProbe>>>,
    exposer: Option<std::sync::Arc<parking_lot::Mutex<dtm_telemetry::PeriodicExposer>>>,
    probe_every: u64,
    dir: PathBuf,
    label: String,
}

impl ObserveAttach {
    fn build(spec: &ObserveSpec, warmup: Time) -> std::io::Result<ObserveAttach> {
        use std::sync::Arc;
        std::fs::create_dir_all(&spec.dir)?;
        let recorder = spec.flight_k.map(dtm_telemetry::flight_recorder);
        let monitor = spec.health.clone().map(|cfg| {
            let mut m = dtm_telemetry::HealthMonitor::new(cfg);
            if let Some(rec) = &recorder {
                let onset = spec.dir.join(format!("{}.onset.flight.jsonl", spec.label));
                m = m.with_auto_dump(Arc::clone(rec), onset);
            }
            Arc::new(parking_lot::Mutex::new(m))
        });
        let mut sink = None;
        let mut probe = None;
        let exposer = spec.expose_every.map(|every| {
            // The exposer only snapshots; a telemetry sink and a
            // steady-state probe sharing its registry produce the
            // numbers the snapshots carry.
            let registry = Arc::new(dtm_telemetry::MetricsRegistry::new());
            sink = Some(Arc::new(parking_lot::Mutex::new(
                dtm_telemetry::TelemetrySink::new(Arc::clone(&registry)),
            )));
            probe = Some(Arc::new(parking_lot::Mutex::new(
                dtm_telemetry::SteadyStateProbe::new(Arc::clone(&registry), warmup),
            )));
            let ex = dtm_telemetry::PeriodicExposer::new(registry, every)
                .with_json(spec.dir.join(format!("{}.live.json", spec.label)))
                .with_prom(spec.dir.join(format!("{}.prom", spec.label)));
            Arc::new(parking_lot::Mutex::new(ex))
        });
        Ok(ObserveAttach {
            recorder,
            monitor,
            sink,
            probe,
            exposer,
            probe_every: spec.arena_probe_every,
            dir: spec.dir.clone(),
            label: spec.label.clone(),
        })
    }

    /// Collect results and write the final flight dump.
    fn finish(self) -> StreamObservation {
        let mut out = StreamObservation::default();
        if let Some(monitor) = &self.monitor {
            let m = monitor.lock();
            out.health_events = m.events().to_vec();
            out.health_suppressed = m.suppressed();
            match m.dump_result() {
                Some(Ok(path)) => out.onset_dump = Some(path.clone()),
                Some(Err(e)) => out.io_error = Some(e.clone()),
                None => {}
            }
        }
        if let Some(recorder) = &self.recorder {
            let mut text = recorder.lock().dump();
            if let Some(monitor) = &self.monitor {
                text.push_str(&monitor.lock().events_jsonl());
            }
            let path = self.dir.join(format!("{}.flight.jsonl", self.label));
            match std::fs::write(&path, text) {
                Ok(()) => out.flight_dump = Some(path),
                Err(e) => {
                    out.io_error
                        .get_or_insert(format!("flight dump to {}: {e}", path.display()));
                }
            }
        }
        if let Some(exposer) = &self.exposer {
            let mut ex = exposer.lock();
            ex.flush_now();
            out.expose_flushes = ex.flushes();
            if let Some(e) = ex.last_error() {
                out.io_error.get_or_insert(e.to_string());
            }
        }
        out
    }
}

/// The shared drive loop behind [`run_stream`] and
/// [`run_stream_observed`].
fn run_stream_inner<P: SchedulingPolicy, S: WorkloadSource>(
    network: &Network,
    source: S,
    policy: P,
    config: EngineConfig,
    steps: Time,
    warmup: Time,
    spec: Option<&ObserveSpec>,
) -> (StreamSummary, Option<StreamObservation>) {
    use std::sync::Arc;
    assert!(warmup < steps, "warmup must leave a measurement window");
    let policy_name = policy.name();
    let mut config = config;
    config.retention = Retention::Streaming { warmup };
    config.record_events = false;
    config.max_steps = config.max_steps.max(steps);
    let attach = spec.map(|s| ObserveAttach::build(s, warmup).expect("observability dir writable"));
    let mut engine = Engine::new(network.clone(), policy, config);
    if let Some(a) = &attach {
        match (&a.recorder, &a.monitor) {
            // Both on: fuse them so the kernel probes one observer with
            // lock-free answers instead of paying two mutex round-trips
            // per per-tick question.
            (Some(rec), Some(mon)) => {
                engine = engine.with_observer(dtm_telemetry::ObservabilityStack::new(
                    Arc::clone(rec),
                    Arc::clone(mon),
                ));
            }
            (Some(rec), None) => engine = engine.with_observer(Arc::clone(rec)),
            (None, Some(mon)) => engine = engine.with_observer(Arc::clone(mon)),
            (None, None) => {}
        }
        if let Some(sink) = &a.sink {
            engine = engine.with_observer(Arc::clone(sink));
        }
        if let Some(probe) = &a.probe {
            engine = engine.with_observer(Arc::clone(probe));
        }
        if let Some(ex) = &a.exposer {
            engine = engine.with_observer(Arc::clone(ex));
        }
    }
    let mut kernel = engine.into_kernel(source);
    let mid = warmup + (steps - warmup) / 2;
    let (mut sum_early, mut n_early) = (0u128, 0u64);
    let (mut sum_late, mut n_late) = (0u128, 0u64);
    let mut aborted = 0u64;
    let probe_every = attach.as_ref().map_or(0, |a| a.probe_every);
    while kernel.now() < steps {
        let Some(fx) = kernel.tick() else { break };
        aborted += fx.aborted.len() as u64;
        if fx.t >= warmup {
            if fx.t < mid {
                sum_early += fx.live_after as u128;
                n_early += 1;
            } else {
                sum_late += fx.live_after as u128;
                n_late += 1;
            }
        }
        if probe_every != 0 && kernel.now().is_multiple_of(probe_every) {
            if let Some(monitor) = attach.as_ref().and_then(|a| a.monitor.as_ref()) {
                let v = kernel.vitals();
                monitor
                    .lock()
                    .probe_arena(v.now, v.arena_high_water, v.peak_live);
            }
        }
    }
    let mean = |sum: u128, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
    let backlog_early_mean = mean(sum_early, n_early);
    let backlog_late_mean = mean(sum_late, n_late);
    let half_window = (((steps - warmup) / 2).max(1)) as f64;
    let soj = kernel.sojourn_latency();
    let summary = StreamSummary {
        policy: policy_name,
        n: network.n(),
        steps: kernel.now(),
        committed: kernel.commit_count(),
        aborted,
        backlog_end: kernel.live_count(),
        backlog_peak: kernel.peak_live(),
        arena_high_water: kernel.arena_high_water(),
        backlog_early_mean,
        backlog_late_mean,
        backlog_slope: (backlog_late_mean - backlog_early_mean) / half_window,
        p50_latency: soj.percentile(0.50),
        p95_latency: soj.percentile(0.95),
        max_latency: soj.max(),
        mean_latency: soj.mean(),
    };
    (summary, attach.map(ObserveAttach::finish))
}

thread_local! {
    /// Experiment id wrapped around the currently-running grid cell
    /// (see [`with_sidecar_scope`]); names the sidecars written inside.
    static SIDECAR_SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Run `f` with `label` (an experiment id like `"E3"`) as the sidecar
/// scope on this thread. [`crate::ParallelGrid`] wraps every cell in
/// this, on whichever pool thread the cell lands on; runs outside any
/// scope fall back to the label `"run"`.
pub fn with_sidecar_scope<R>(label: &str, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<String>);
    impl Drop for Reset {
        fn drop(&mut self) {
            let prev = self.0.take();
            SIDECAR_SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SIDECAR_SCOPE.with(|s| s.borrow_mut().replace(label.to_string()));
    let _reset = Reset(prev);
    f()
}

fn current_sidecar_scope() -> String {
    SIDECAR_SCOPE.with(|s| s.borrow().clone().unwrap_or_else(|| "run".to_string()))
}

/// Lowercase a name into a filename-safe slug.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// FNV-1a over a byte string; stable across platforms and processes.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What makes one run distinguishable from every other run in a suite:
/// the experiment scope it runs under, its seed (when the workload has
/// one), and a fingerprint of the full workload + engine configuration.
/// Two runs with the same identity produce the same result, so their
/// sidecars may legitimately coincide — byte-identically.
struct RunIdentity {
    scope: String,
    seed: Option<u64>,
    fingerprint: u64,
}

impl RunIdentity {
    fn of(workload: &WorkloadKind, config: &EngineConfig) -> Self {
        use serde::Serialize;
        let (workload_repr, seed) = match workload {
            WorkloadKind::Trace(inst) => {
                let json = serde_json::to_string(&inst.to_value()).expect("instance serializes");
                (format!("trace:{json}"), None)
            }
            WorkloadKind::ClosedLoop { spec, rounds, seed } => {
                let json = serde_json::to_string(&spec.to_value()).expect("spec serializes");
                (format!("closed-loop:{json}:r{rounds}:s{seed}"), Some(*seed))
            }
        };
        let fingerprint = fnv64(format!("{workload_repr}|{config:?}").as_bytes());
        RunIdentity {
            scope: current_sidecar_scope(),
            seed,
            fingerprint,
        }
    }

    /// Deterministic sidecar file stem:
    /// `<scope>-<policy>-<network>[-s<seed>]-<fingerprint>`.
    fn file_stem(&self, policy: &str, network: &Network) -> String {
        let seed_part = self.seed.map(|s| format!("-s{s}")).unwrap_or_default();
        format!(
            "{}-{}-{}{}-{:016x}",
            slug(&self.scope),
            slug(policy),
            slug(network.name()),
            seed_part,
            self.fingerprint
        )
    }
}

/// Write one telemetry sidecar for `result` into `dir` (created on
/// demand) as `<file_stem>.metrics.json`: a pretty-printed
/// [`dtm_telemetry::MetricsSnapshot`] derived from the event log, tagged
/// with the run identity. Returns the path.
///
/// Writes are idempotent: if the file already exists with byte-identical
/// content (the same run re-executed, or a second suite process pointed
/// at the same directory), it is left alone. If it exists with
/// **different** content, the run identity scheme has collided — that is
/// a bug, and the call fails with [`std::io::ErrorKind::AlreadyExists`]
/// instead of silently clobbering another run's data.
pub fn write_metrics_sidecar(
    dir: &Path,
    file_stem: &str,
    network: &Network,
    result: &RunResult,
) -> std::io::Result<PathBuf> {
    use serde::{Serialize, Value};
    std::fs::create_dir_all(dir)?;
    let registry = dtm_telemetry::MetricsRegistry::new();
    dtm_telemetry::record_run(result, &registry);
    let doc = Value::Object(vec![
        ("policy".into(), Value::Str(result.policy.clone())),
        ("network".into(), Value::Str(network.name().to_string())),
        ("n".into(), Value::UInt(network.n() as u64)),
        ("metrics".into(), registry.snapshot().to_value()),
    ]);
    let body = serde_json::to_string_pretty(&doc).expect("sidecar serializes");
    let path = dir.join(format!("{file_stem}.metrics.json"));
    match std::fs::read_to_string(&path) {
        Ok(existing) if existing == body => return Ok(path),
        Ok(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!(
                    "sidecar identity collision: {} exists with different content",
                    path.display()
                ),
            ))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::GreedyPolicy;
    use dtm_graph::topology;
    use dtm_model::{WorkloadGenerator, WorkloadSpec};

    #[test]
    fn summarizes_clean_run() {
        let net = topology::clique(6);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 2), 1).generate(&net);
        let s = run_summary(
            &net,
            WorkloadKind::Trace(inst),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        assert_eq!(s.txns, 6);
        assert!(s.ratio >= 0.0);
        assert!(s.makespan >= s.max_latency);
    }

    #[test]
    fn closed_loop_summary() {
        let net = topology::line(5);
        let s = run_summary(
            &net,
            WorkloadKind::ClosedLoop {
                spec: WorkloadSpec::batch_uniform(3, 1),
                rounds: 2,
                seed: 4,
            },
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        assert_eq!(s.txns, 10);
    }

    #[test]
    fn sidecar_scope_nests_and_restores() {
        assert_eq!(current_sidecar_scope(), "run");
        with_sidecar_scope("E3", || {
            assert_eq!(current_sidecar_scope(), "E3");
            with_sidecar_scope("E4", || assert_eq!(current_sidecar_scope(), "E4"));
            assert_eq!(current_sidecar_scope(), "E3");
        });
        assert_eq!(current_sidecar_scope(), "run");
    }

    #[test]
    fn identity_distinguishes_seed_config_and_workload() {
        let spec = WorkloadSpec::batch_uniform(4, 2);
        let wl = |seed| WorkloadKind::ClosedLoop {
            spec: spec.clone(),
            rounds: 2,
            seed,
        };
        let cfg = EngineConfig::default();
        let a = RunIdentity::of(&wl(1), &cfg);
        let b = RunIdentity::of(&wl(2), &cfg);
        assert_ne!(a.fingerprint, b.fingerprint, "seed must differentiate");
        let capped = EngineConfig {
            link_capacity: Some(1),
            allow_late_execution: true,
            ..EngineConfig::default()
        };
        let c = RunIdentity::of(&wl(1), &capped);
        assert_ne!(a.fingerprint, c.fingerprint, "config must differentiate");
        // Same parameters -> same fingerprint, deterministically.
        let a2 = RunIdentity::of(&wl(1), &cfg);
        assert_eq!(a.fingerprint, a2.fingerprint);
        let net = topology::clique(6);
        let stem = a.file_stem("greedy", &net);
        assert!(stem.starts_with("run-greedy-"), "stem: {stem}");
        assert!(stem.contains("-s1-"), "stem: {stem}");
    }

    #[test]
    fn sidecar_collision_errors_identical_is_idempotent() {
        let net = topology::clique(5);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(3, 1), 9).generate(&net);
        let res = dtm_sim::run_policy(
            &net,
            dtm_model::TraceSource::new(inst),
            GreedyPolicy::new(),
            EngineConfig {
                record_events: true,
                ..EngineConfig::default()
            },
        );
        res.expect_ok();
        let dir = std::env::temp_dir().join(format!("dtm-sidecar-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p1 = write_metrics_sidecar(&dir, "stem", &net, &res).unwrap();
        // Identical rewrite: fine.
        let p2 = write_metrics_sidecar(&dir, "stem", &net, &res).unwrap();
        assert_eq!(p1, p2);
        // Same name, different content: loud failure, original preserved.
        let before = std::fs::read_to_string(&p1).unwrap();
        std::fs::write(&p1, "something else").unwrap();
        let err = write_metrics_sidecar(&dir, "stem", &net, &res).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(std::fs::read_to_string(&p1).unwrap(), "something else");
        std::fs::write(&p1, before).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
