//! Shared experiment runner: executes a policy on a workload, validates
//! the event log, and condenses metrics + a conservative competitive-ratio
//! estimate into one [`Summary`] row.

use dtm_graph::Network;
use dtm_model::{ClosedLoopSource, Instance, Time, TraceSource, WorkloadSpec};
use dtm_offline::competitive_ratio;
use dtm_sim::{
    run_policy, validate_events, EngineConfig, RunResult, SchedulingPolicy, ValidationConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A workload to run.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// Replay a pre-generated instance at its recorded times.
    Trace(Instance),
    /// Closed loop (Section III-C): every node keeps one transaction
    /// outstanding for `rounds` rounds.
    ClosedLoop {
        /// Workload spec (objects, k, popularity).
        spec: WorkloadSpec,
        /// Rounds per node.
        rounds: u32,
        /// Seed.
        seed: u64,
    },
}

/// One result row.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Policy name.
    pub policy: String,
    /// Nodes in the network.
    pub n: usize,
    /// Committed transactions.
    pub txns: usize,
    /// Total execution time.
    pub makespan: Time,
    /// Worst per-transaction latency.
    pub max_latency: Time,
    /// Mean latency.
    pub mean_latency: f64,
    /// Total weighted distance traveled by objects.
    pub comm_cost: u64,
    /// Conservative competitive-ratio estimate (see `dtm_offline::ratio`).
    pub ratio: f64,
    /// Peak concurrent objects on any single edge (congestion).
    pub peak_edge_load: u32,
}

/// Run `policy` on `workload` over `network`, validate, and summarize.
///
/// # Panics
/// Panics if the run has violations or fails event validation — an
/// experiment on a broken scheduler must fail loudly, not report numbers.
pub fn run_summary<P: SchedulingPolicy>(
    network: &Network,
    workload: WorkloadKind,
    policy: P,
    config: EngineConfig,
) -> Summary {
    let mut config = config;
    config.record_events = true;
    let result = match workload {
        WorkloadKind::Trace(instance) => {
            instance.validate(network).expect("valid instance");
            run_policy(network, TraceSource::new(instance), policy, config.clone())
        }
        WorkloadKind::ClosedLoop { spec, rounds, seed } => {
            let src = ClosedLoopSource::new(network.clone(), spec, rounds, seed);
            run_policy(network, src, policy, config.clone())
        }
    };
    result.expect_ok();
    let vcfg = ValidationConfig {
        speed_divisor: config.speed_divisor,
        link_capacity: config.link_capacity,
        allow_late_execution: config.allow_late_execution,
        require_all_committed: true,
    };
    validate_events(network, &result, &vcfg)
        .unwrap_or_else(|e| panic!("event validation failed for {}: {e}", result.policy));
    let ratio = competitive_ratio(network, &result);
    let peak_edge_load = dtm_sim::peak_congestion(&result);
    if let Some(dir) = crate::telemetry_flag() {
        write_metrics_sidecar(&dir, network, &result).expect("telemetry sidecar writable");
    }
    Summary {
        policy: result.policy.clone(),
        n: network.n(),
        txns: result.metrics.committed,
        makespan: result.metrics.makespan,
        max_latency: result.metrics.latency.max,
        mean_latency: result.metrics.latency.mean,
        comm_cost: result.metrics.comm_cost,
        ratio: ratio.max_ratio,
        peak_edge_load,
    }
}

/// Process-wide sidecar sequence number, so repeated runs of the same
/// (policy, network) pair within one experiment suite never collide.
static SIDECAR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write one telemetry sidecar for `result` into `dir` (created on
/// demand): a pretty-printed [`dtm_telemetry::MetricsSnapshot`] derived
/// from the event log, tagged with the run identity. Returns the path.
pub fn write_metrics_sidecar(
    dir: &Path,
    network: &Network,
    result: &RunResult,
) -> std::io::Result<PathBuf> {
    use serde::{Serialize, Value};
    std::fs::create_dir_all(dir)?;
    let registry = dtm_telemetry::MetricsRegistry::new();
    dtm_telemetry::record_run(result, &registry);
    let doc = Value::Object(vec![
        ("policy".into(), Value::Str(result.policy.clone())),
        ("network".into(), Value::Str(network.name().to_string())),
        ("n".into(), Value::UInt(network.n() as u64)),
        ("metrics".into(), registry.snapshot().to_value()),
    ]);
    let seq = SIDECAR_SEQ.fetch_add(1, Ordering::Relaxed);
    let slug: String = result
        .policy
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("{seq:04}-{slug}-{}.metrics.json", network.name()));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("sidecar serializes"),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::GreedyPolicy;
    use dtm_graph::topology;
    use dtm_model::WorkloadGenerator;

    #[test]
    fn summarizes_clean_run() {
        let net = topology::clique(6);
        let inst = WorkloadGenerator::new(WorkloadSpec::batch_uniform(4, 2), 1).generate(&net);
        let s = run_summary(
            &net,
            WorkloadKind::Trace(inst),
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        assert_eq!(s.txns, 6);
        assert!(s.ratio >= 0.0);
        assert!(s.makespan >= s.max_latency);
    }

    #[test]
    fn closed_loop_summary() {
        let net = topology::line(5);
        let s = run_summary(
            &net,
            WorkloadKind::ClosedLoop {
                spec: WorkloadSpec::batch_uniform(3, 1),
                rounds: 2,
                seed: 4,
            },
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
        assert_eq!(s.txns, 10);
    }
}
