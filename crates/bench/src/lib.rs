//! # dtm-bench
//!
//! Experiment harness reproducing, as measurements, every theorem-level
//! claim of Busch et al., IPDPS 2020 (the paper has no empirical section;
//! EXPERIMENTS.md defines the experiment suite E1–E17 and ablations
//! A1–A5 and records the results).
//!
//! Each experiment is a module in [`experiments`] with a binary target
//! (`exp_e1` … `exp_all`); run them in release mode:
//!
//! ```text
//! cargo run -p dtm-bench --release --bin exp_all
//! cargo run -p dtm-bench --release --bin exp_e3 -- --quick --jobs 4
//! ```
//!
//! Experiment grids fan out across a thread pool via [`ParallelGrid`];
//! `--jobs N` pins the pool width (default: all cores). Tables are
//! byte-identical at every jobs level — see EXPERIMENTS.md,
//! "Parallel execution".
//!
//! Criterion micro-benchmarks of the schedulers and substrates live under
//! `benches/` (`cargo bench -p dtm-bench`).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod grid;
pub mod runner;
pub mod table;

pub use grid::ParallelGrid;
pub use runner::{
    run_stream, run_stream_labeled, run_stream_observed, run_summary, run_summary_with,
    ObserveSpec, StreamObservation, StreamSummary, Summary, WorkloadKind,
};
pub use table::Table;

use std::sync::OnceLock;

/// Parse the conventional `--quick` flag used by every experiment binary.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Parse the conventional `--jobs <N>` flag (also `-j <N>`): the number
/// of worker threads experiment grids fan out on. Absent flag = `None`
/// (the pool defaults to `RAYON_NUM_THREADS`, then all cores).
pub fn jobs_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs" || a == "-j")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Apply `--jobs` to the global thread pool. Every experiment binary
/// calls this once at startup; without the flag it is a no-op and the
/// pool uses its defaults.
pub fn init_jobs() {
    if let Some(n) = jobs_flag() {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("global thread pool configures");
    }
}

/// The process-wide `--telemetry <dir>` flag used by every experiment
/// binary: when present, [`run_summary`] writes one `MetricsSnapshot`
/// sidecar JSON per run into the directory (created on demand). See
/// EXPERIMENTS.md, "Telemetry sidecars".
///
/// The command line is parsed **once per process** and cached (the flag
/// has process-lifetime semantics): every `run_summary` call — including
/// cells racing on the thread pool — observes the same enabled/disabled
/// state for the life of the process, never a torn mid-suite flip.
pub fn telemetry_flag() -> Option<std::path::PathBuf> {
    static TELEMETRY_DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
    TELEMETRY_DIR
        .get_or_init(|| {
            let args: Vec<String> = std::env::args().collect();
            args.iter()
                .position(|a| a == "--telemetry")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
        })
        .clone()
}

/// The continuous-observability flags shared by the streaming bins
/// (`--health`, `--flight-k <K>`, `--expose-every <N>`); see
/// [`ObsFlags`]. Parsed once per process and cached, exactly like
/// [`telemetry_flag`], so parallel grid cells all observe the same
/// state.
pub fn obs_flags() -> &'static ObsFlags {
    static OBS: OnceLock<ObsFlags> = OnceLock::new();
    OBS.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        let value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        };
        ObsFlags {
            health: args.iter().any(|a| a == "--health"),
            flight_k: value("--flight-k")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&k| k > 0),
            expose_every: value("--expose-every")
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n > 0),
        }
    })
}

/// Process-wide continuous-observability switches for streaming runs
/// (attached by [`run_stream`] when any is on; outputs land in the
/// `--telemetry` directory, defaulting to `observability/`):
///
/// * `--health` — attach the `dtm_telemetry::HealthMonitor` watchdogs
///   and report their events;
/// * `--flight-k <K>` — attach a K-step `dtm_telemetry::FlightRecorder`
///   and dump it at the end of the run (plus an onset dump at the first
///   health event, when `--health` is also on);
/// * `--expose-every <N>` — flush live metrics every N steps as JSON +
///   Prometheus text.
#[derive(Clone, Debug, Default)]
pub struct ObsFlags {
    /// `--health` present.
    pub health: bool,
    /// `--flight-k <K>` value.
    pub flight_k: Option<usize>,
    /// `--expose-every <N>` value.
    pub expose_every: Option<u64>,
}

impl ObsFlags {
    /// True when any observability switch is on.
    pub fn any(&self) -> bool {
        self.health || self.flight_k.is_some() || self.expose_every.is_some()
    }
}
