//! # dtm-bench
//!
//! Experiment harness reproducing, as measurements, every theorem-level
//! claim of Busch et al., IPDPS 2020 (the paper has no empirical section;
//! EXPERIMENTS.md defines the experiment suite E1–E12 and ablations
//! A1–A4 and records the results).
//!
//! Each experiment is a module in [`experiments`] with a binary target
//! (`exp_e1` … `exp_all`); run them in release mode:
//!
//! ```text
//! cargo run -p dtm-bench --release --bin exp_all
//! cargo run -p dtm-bench --release --bin exp_e3 -- --quick
//! ```
//!
//! Criterion micro-benchmarks of the schedulers and substrates live under
//! `benches/` (`cargo bench -p dtm-bench`).

pub mod experiments;
pub mod runner;
pub mod table;

pub use runner::{run_summary, Summary, WorkloadKind};
pub use table::Table;

/// Parse the conventional `--quick` flag used by every experiment binary.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Parse the conventional `--telemetry <dir>` flag used by every
/// experiment binary: when present, [`run_summary`] writes one
/// `MetricsSnapshot` sidecar JSON per run into the directory (created on
/// demand). See EXPERIMENTS.md, "Telemetry sidecars".
pub fn telemetry_flag() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}
