//! E12 — cross-topology scheduler shoot-out and load sweep.
//!
//! Compares the paper's schedulers (greedy = Algorithm 1, bucket =
//! Algorithm 2 with per-topology batch substrate) against the baselines
//! the related-work section discusses: FIFO earliest-feasible and the
//! TSP-tour heuristic of Zhang et al. \[30\]. Also sweeps the arrival rate
//! on a grid to show latency under increasing contention.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};
use dtm_offline::{ClusterScheduler, LineScheduler, ListScheduler, StarScheduler};
use dtm_sim::EngineConfig;

fn bucket_for(net: &Network) -> Box<dyn dtm_sim::SchedulingPolicy> {
    match net.structured() {
        Some(dtm_graph::Structured::Line { .. }) => Box::new(BucketPolicy::new(LineScheduler)),
        Some(dtm_graph::Structured::Cluster { .. }) => {
            Box::new(BucketPolicy::new(ClusterScheduler::default()))
        }
        Some(dtm_graph::Structured::Star { .. }) => {
            Box::new(BucketPolicy::new(StarScheduler::default()))
        }
        _ => Box::new(BucketPolicy::new(ListScheduler::fifo())),
    }
}

/// Run E12.
pub fn run(quick: bool) -> Vec<Table> {
    let nets: Vec<Network> = if quick {
        vec![topology::clique(12), topology::line(24)]
    } else {
        vec![
            topology::clique(32),
            topology::hypercube(5),
            topology::butterfly(3),
            topology::grid(&[6, 6]),
            topology::line(64),
            topology::star(4, 8),
            topology::cluster(4, 4, 4),
            topology::random(32, 3, 3, 77),
        ]
    };
    let mut t = Table::new(
        "E12 — shoot-out: Algorithms 1 & 2 vs FIFO and TSP baselines",
        &[
            "topology", "policy", "txns", "makespan", "mean lat", "max lat", "comm", "ratio",
        ],
    );
    type PolicyMk = fn(&Network) -> Box<dyn dtm_sim::SchedulingPolicy>;
    let policies: Vec<PolicyMk> = vec![
        |_| Box::new(GreedyPolicy::new()),
        bucket_for,
        |_| Box::new(FifoPolicy::new()),
        |_| Box::new(TspPolicy::new()),
    ];
    let mut grid = ParallelGrid::new("E12");
    for net in &nets {
        for &mk in &policies {
            grid.cell(move || {
                let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
                let s: Summary = run_summary(
                    net,
                    WorkloadKind::ClosedLoop {
                        spec,
                        rounds: 2,
                        seed: 1200,
                    },
                    mk(net),
                    EngineConfig::default(),
                );
                vec![
                    net.name().to_string(),
                    s.policy.clone(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    format!("{:.1}", s.mean_latency),
                    s.max_latency.to_string(),
                    s.comm_cost.to_string(),
                    fmt_ratio(s.ratio),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }

    // Load sweep: latency vs arrival rate under the greedy scheduler and
    // FIFO on a grid.
    let mut sweep = Table::new(
        "E12b — load sweep on grid(6x6): latency vs arrival rate",
        &[
            "rate",
            "policy",
            "txns",
            "mean lat",
            "p95-ish max lat",
            "ratio",
        ],
    );
    let rates: Vec<f64> = if quick {
        vec![0.05, 0.2]
    } else {
        vec![0.02, 0.05, 0.1, 0.2, 0.4]
    };
    let mut sweep_grid = ParallelGrid::new("E12b");
    for &rate in &rates {
        for policy in ["greedy", "fifo"] {
            sweep_grid.cell(move || {
                let net = topology::grid(&[6, 6]);
                let spec = WorkloadSpec {
                    num_objects: 12,
                    k: 2,
                    object_choice: ObjectChoice::Zipf { exponent: 0.8 },
                    arrival: FiniteArrivals::Bernoulli { rate, horizon: 40 },
                };
                let inst = WorkloadGenerator::new(spec, 1300).generate(&net);
                if inst.txns.is_empty() {
                    return None;
                }
                let s = match policy {
                    "greedy" => run_summary(
                        &net,
                        WorkloadKind::Trace(inst),
                        GreedyPolicy::new(),
                        EngineConfig::default(),
                    ),
                    _ => run_summary(
                        &net,
                        WorkloadKind::Trace(inst),
                        FifoPolicy::new(),
                        EngineConfig::default(),
                    ),
                };
                Some(vec![
                    format!("{rate}"),
                    s.policy.clone(),
                    s.txns.to_string(),
                    format!("{:.1}", s.mean_latency),
                    s.max_latency.to_string(),
                    fmt_ratio(s.ratio),
                ])
            });
        }
    }
    for row in sweep_grid.run().into_iter().flatten() {
        sweep.row(row);
    }
    vec![t, sweep]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_shootout_completes() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 8); // 2 topologies x 4 policies
        assert!(!tables[1].is_empty());
    }
}
