//! E10 — Section IV-D, star graphs: bucket conversion of the randomized
//! star scheduler, `O(log β · min(kβ, log_c^k m) · log^3 n)`-competitive.
//!
//! Sweeps the number of rays α, ray length β and k. Expectation: the
//! bucket(star) ratio grows mildly with β and k (polylog·min(kβ,·)),
//! clearly below the FIFO baseline on long rays, where every ray
//! ping-pong costs 2β.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::WorkloadSpec;
use dtm_offline::StarScheduler;
use dtm_sim::EngineConfig;

/// Run E10.
pub fn run(quick: bool) -> Vec<Table> {
    let cases: Vec<(u32, u32, usize)> = if quick {
        vec![(3, 4, 2), (3, 12, 2)]
    } else {
        vec![(4, 8, 1), (4, 8, 4), (8, 8, 2), (4, 24, 2), (4, 48, 2)]
    };
    let mut t = Table::new(
        "E10 — star graph: bucket(star) vs baselines",
        &[
            "rays", "ray len", "k", "policy", "txns", "makespan", "ratio",
        ],
    );
    type PolicyMk = fn() -> Box<dyn dtm_sim::SchedulingPolicy>;
    let policies: Vec<PolicyMk> = vec![
        || Box::new(BucketPolicy::new(StarScheduler::default())),
        || Box::new(GreedyPolicy::new()),
        || Box::new(FifoPolicy::new()),
    ];
    let mut grid = ParallelGrid::new("E10");
    for &(alpha, beta, k) in &cases {
        for &mk in &policies {
            grid.cell(move || {
                let net = topology::star(alpha, beta);
                let spec = WorkloadSpec::batch_uniform(alpha * beta / 2 + 1, k);
                let s: Summary = run_summary(
                    &net,
                    WorkloadKind::ClosedLoop {
                        spec,
                        rounds: 2,
                        seed: 1000,
                    },
                    mk(),
                    EngineConfig::default(),
                );
                vec![
                    alpha.to_string(),
                    beta.to_string(),
                    k.to_string(),
                    s.policy.clone(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    fmt_ratio(s.ratio),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_completes() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 6);
    }
}
