//! E14 — statistical robustness: ratio variance across seeds.
//!
//! Every headline number in E3/E8/E12 comes from a fixed seed; this
//! experiment reruns the two flagship claims across many seeds (in
//! parallel, via rayon) and reports mean ± standard deviation, so the
//! recorded shapes are demonstrably not seed artifacts:
//!
//! * Theorem 3 (clique, greedy): ratio vs k, n fixed;
//! * Section IV-D (line, bucket(line-sweep) vs FIFO): ratio vs n.

use crate::runner::{run_summary, WorkloadKind};
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};
use dtm_offline::LineScheduler;
use dtm_sim::EngineConfig;
use rayon::prelude::*;

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Run E14.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: Vec<u64> = if quick {
        (0..4).collect()
    } else {
        (0..16).collect()
    };

    // Part 1: clique ratio vs k across seeds. Cells fan out over k; each
    // cell fans out over seeds with a nested `par_iter`, so both layers of
    // the study run concurrently.
    let mut t1 = Table::new(
        "E14a — Theorem 3 robustness: clique(32) greedy ratio across seeds",
        &["k", "seeds", "mean ratio", "std", "max"],
    );
    let seeds = &seeds;
    let mut g1 = ParallelGrid::new("E14a");
    for &k in &[1usize, 2, 4, 8] {
        g1.cell(move || {
            let ratios: Vec<f64> = seeds
                .par_iter()
                .map(|&seed| {
                    let net = topology::clique(32);
                    run_summary(
                        &net,
                        WorkloadKind::ClosedLoop {
                            spec: WorkloadSpec::batch_uniform(32, k),
                            rounds: 2,
                            seed: 5000 + seed,
                        },
                        GreedyPolicy::uniform(1),
                        EngineConfig::default(),
                    )
                    .ratio
                })
                .collect();
            let (mean, std) = mean_std(&ratios);
            let max = ratios.iter().copied().fold(0.0f64, f64::max);
            vec![
                k.to_string(),
                ratios.len().to_string(),
                format!("{mean:.2}"),
                format!("{std:.2}"),
                format!("{max:.2}"),
            ]
        });
    }
    for row in g1.run() {
        t1.row(row);
    }

    // Part 2: line bucket vs fifo across seeds.
    let mut t2 = Table::new(
        "E14b — line robustness: bucket(line-sweep) vs fifo ratio across seeds",
        &["n", "policy", "seeds", "mean ratio", "std", "max"],
    );
    let ns: Vec<u32> = if quick { vec![48] } else { vec![64, 128] };
    let mut g2 = ParallelGrid::new("E14b");
    for &n in &ns {
        for policy_name in ["bucket(line)", "fifo"] {
            g2.cell(move || {
                let ratios: Vec<f64> = seeds
                    .par_iter()
                    .map(|&seed| {
                        let net = topology::line(n);
                        let spec = WorkloadSpec {
                            num_objects: (n / 4).max(2),
                            k: 2,
                            object_choice: ObjectChoice::Uniform,
                            arrival: FiniteArrivals::Bernoulli {
                                rate: (2.0 / n as f64).min(0.5),
                                horizon: n as u64,
                            },
                        };
                        let inst = WorkloadGenerator::new(spec, 6000 + seed).generate(&net);
                        if inst.txns.is_empty() {
                            return 1.0;
                        }
                        let wl = WorkloadKind::Trace(inst);
                        let s = if policy_name == "fifo" {
                            run_summary(&net, wl, FifoPolicy::new(), EngineConfig::default())
                        } else {
                            run_summary(
                                &net,
                                wl,
                                BucketPolicy::new(LineScheduler),
                                EngineConfig::default(),
                            )
                        };
                        s.ratio
                    })
                    .collect();
                let (mean, std) = mean_std(&ratios);
                let max = ratios.iter().copied().fold(0.0f64, f64::max);
                vec![
                    n.to_string(),
                    policy_name.to_string(),
                    ratios.len().to_string(),
                    format!("{mean:.2}"),
                    format!("{std:.2}"),
                    format!("{max:.2}"),
                ]
            });
        }
    }
    for row in g2.run() {
        t2.row(row);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn variance_study_runs() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        // FIFO mean ratio should exceed bucket mean ratio on the line.
        let rows: Vec<Vec<String>> = tables[1]
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let bucket_mean: f64 = rows[0][3].parse().unwrap();
        let fifo_mean: f64 = rows[1][3].parse().unwrap();
        assert!(
            fifo_mean >= bucket_mean * 0.8,
            "fifo {fifo_mean} unexpectedly far below bucket {bucket_mean}"
        );
    }
}
