//! E17 — open-system stability: backlog trajectory vs arrival rate ρ.
//!
//! The paper analyzes *closed* batches — all transactions known, runs end
//! when the batch drains. This experiment asks the queueing-theoretic
//! question the closed setting cannot: for each scheduling policy, up to
//! what sustained system-wide arrival rate ρ (expected transactions per
//! step, Poisson) does the backlog stay bounded, and what do steady-state
//! sojourn latencies look like below that knee?
//!
//! Method: drive each (topology, policy, ρ) cell through
//! [`crate::runner::run_stream`] — an open-loop seeded Poisson stream
//! under [`dtm_sim::Retention::Streaming`] — and compare the mean
//! backlog in the first and second halves of the post-warmup window. A
//! per-step growth above [`SLOPE_TOL`] marks overload. The second table
//! reports each (topology, policy)'s *knee*: the largest swept ρ still
//! stable, with its steady-state latency percentiles.
//!
//! Every cell is deterministic (seeded source, pure kernel) — the tables
//! are byte-identical at any `--jobs` level.

use crate::runner::{run_stream_labeled, StreamSummary};
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{ArrivalProcess, OpenLoopSource, WorkloadSpec};
use dtm_offline::{LineScheduler, ListScheduler};
use dtm_sim::EngineConfig;

/// Backlog growth (live transactions per step, between the two
/// post-warmup half-window means) below which a rate counts as stable.
pub const SLOPE_TOL: f64 = 0.02;

fn policy_for(name: &str, net: &Network) -> Box<dyn dtm_sim::SchedulingPolicy> {
    match name {
        "greedy" => Box::new(GreedyPolicy::new()),
        "fifo" => Box::new(FifoPolicy::new()),
        _ => match net.structured() {
            Some(dtm_graph::Structured::Line { .. }) => Box::new(BucketPolicy::new(LineScheduler)),
            _ => Box::new(BucketPolicy::new(ListScheduler::fifo())),
        },
    }
}

fn spec_for(net: &Network) -> WorkloadSpec {
    // The batch arrival field is ignored by OpenLoopSource; the
    // ArrivalProcess drives arrivals.
    WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(4), 2)
}

/// Run E17.
pub fn run(quick: bool) -> Vec<Table> {
    let nets: Vec<Network> = if quick {
        vec![topology::clique(8), topology::line(12)]
    } else {
        vec![
            topology::clique(16),
            topology::line(24),
            topology::grid(&[5, 5]),
        ]
    };
    let rates: Vec<f64> = if quick {
        vec![0.1, 0.4, 1.2]
    } else {
        vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
    };
    // Full-mode horizon is capped at 10k steps: overloaded cells cost
    // O(steps x backlog) = O(ρ·steps²), and the deepest swept overload
    // (fifo on line(24) at ρ=1.6) already dominates the suite's runtime.
    let (steps, warmup) = if quick { (2_000, 500) } else { (10_000, 2_500) };
    let policies = ["greedy", "bucket", "fifo"];

    let mut grid = ParallelGrid::new("E17");
    for net in &nets {
        for policy in policies {
            for &rate in &rates {
                grid.cell(move || {
                    let source = OpenLoopSource::new(
                        net.clone(),
                        spec_for(net),
                        ArrivalProcess::Poisson { rate },
                        1700,
                    );
                    let label = format!("e17-{}-{policy}-poisson-r{rate}", net.name());
                    let s = run_stream_labeled(
                        &label,
                        net,
                        source,
                        policy_for(policy, net),
                        EngineConfig::default(),
                        steps,
                        warmup,
                    );
                    (net.name().to_string(), rate, s)
                });
            }
        }
    }
    let cells: Vec<(String, f64, StreamSummary)> = grid.run();

    // Adversarial-rate sweep (E17c): same grid shape, but arrivals come
    // from the deterministic adversarial process — bursts aimed at the
    // moment the backlog drains — at a reduced rate set (the adversary
    // needs fewer swept points to expose the stability gap vs Poisson at
    // equal ρ). ROADMAP item-1 leftover.
    let adv_rates: Vec<f64> = if quick {
        vec![0.4, 1.2]
    } else {
        vec![0.2, 0.4, 0.8, 1.6]
    };
    let mut adv_grid = ParallelGrid::new("E17c");
    for net in &nets {
        for policy in policies {
            for &rate in &adv_rates {
                adv_grid.cell(move || {
                    let source = OpenLoopSource::new(
                        net.clone(),
                        spec_for(net),
                        ArrivalProcess::Adversarial { rate },
                        1700,
                    );
                    let label = format!("e17-{}-{policy}-adversarial-r{rate}", net.name());
                    let s = run_stream_labeled(
                        &label,
                        net,
                        source,
                        policy_for(policy, net),
                        EngineConfig::default(),
                        steps,
                        warmup,
                    );
                    (net.name().to_string(), rate, s)
                });
            }
        }
    }
    let adv_cells: Vec<(String, f64, StreamSummary)> = adv_grid.run();

    let mut sweep = Table::new(
        "E17 — open-system stability sweep: Poisson arrivals at rate ρ (system-wide txns/step)",
        &[
            "topology",
            "policy",
            "ρ",
            "committed",
            "backlog@end",
            "slope/step",
            "arena hwm",
            "p50 lat",
            "p95 lat",
            "verdict",
        ],
    );
    for (net_name, rate, s) in &cells {
        sweep.row(vec![
            net_name.clone(),
            s.policy.clone(),
            format!("{rate}"),
            s.committed.to_string(),
            s.backlog_end.to_string(),
            format!("{:+.4}", s.backlog_slope),
            s.arena_high_water.to_string(),
            s.p50_latency.to_string(),
            s.p95_latency.to_string(),
            if s.is_stable(SLOPE_TOL) {
                "stable"
            } else {
                "OVERLOAD"
            }
            .to_string(),
        ]);
    }

    // Knee table: per (topology, policy), the largest swept ρ still
    // stable. Cells arrive in deterministic (insertion) order — rates
    // ascend within each (topology, policy) block — so the last stable
    // row of each block is the knee.
    let mut knee = Table::new(
        "E17b — stability knee: largest swept ρ with bounded backlog",
        &[
            "topology",
            "policy",
            "knee ρ",
            "p50 lat",
            "p95 lat",
            "mean backlog",
        ],
    );
    let mut block: Option<(String, String)> = None;
    let mut best: Option<(f64, StreamSummary)> = None;
    let flush = |key: &Option<(String, String)>,
                 best: &mut Option<(f64, StreamSummary)>,
                 knee: &mut Table| {
        let Some((net_name, policy)) = key else {
            return;
        };
        let row = match best.take() {
            Some((rate, s)) => vec![
                net_name.clone(),
                policy.clone(),
                format!("{rate}"),
                s.p50_latency.to_string(),
                s.p95_latency.to_string(),
                format!("{:.1}", s.backlog_late_mean),
            ],
            None => vec![
                net_name.clone(),
                policy.clone(),
                "< min swept".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        };
        knee.row(row);
    };
    for (net_name, rate, s) in &cells {
        let key = (net_name.clone(), s.policy.clone());
        if block.as_ref() != Some(&key) {
            flush(&block, &mut best, &mut knee);
            block = Some(key);
        }
        if s.is_stable(SLOPE_TOL) {
            best = Some((*rate, s.clone()));
        }
    }
    flush(&block, &mut best, &mut knee);

    let mut adv = Table::new(
        "E17c — adversarial-rate sweep: deterministic burst arrivals at rate ρ",
        &[
            "topology",
            "policy",
            "ρ",
            "committed",
            "backlog@end",
            "slope/step",
            "p95 lat",
            "verdict",
        ],
    );
    for (net_name, rate, s) in &adv_cells {
        adv.row(vec![
            net_name.clone(),
            s.policy.clone(),
            format!("{rate}"),
            s.committed.to_string(),
            s.backlog_end.to_string(),
            format!("{:+.4}", s.backlog_slope),
            s.p95_latency.to_string(),
            if s.is_stable(SLOPE_TOL) {
                "stable"
            } else {
                "OVERLOAD"
            }
            .to_string(),
        ]);
    }

    vec![sweep, knee, adv]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_stream;

    #[test]
    fn quick_stability_sweep_completes() {
        let tables = run(true);
        // 2 topologies x 3 policies x 3 rates.
        assert_eq!(tables[0].len(), 18);
        // One knee row per (topology, policy) block.
        assert_eq!(tables[1].len(), 6);
        // Adversarial sweep: 2 topologies x 3 policies x 2 rates.
        assert_eq!(tables[2].len(), 12);
    }

    #[test]
    fn adversarial_pressure_is_at_least_poisson_pressure() {
        // At equal mean rate the adversarial process concentrates
        // arrivals into bursts; the backlog it builds on a line under
        // FIFO must be at least as bad as a stable low-rate run's.
        let net = topology::line(12);
        let run_with = |process| {
            let source = OpenLoopSource::new(net.clone(), spec_for(&net), process, 1700);
            run_stream(
                &net,
                source,
                FifoPolicy::new(),
                EngineConfig::default(),
                2_000,
                500,
            )
        };
        let adv = run_with(ArrivalProcess::Adversarial { rate: 1.2 });
        assert!(
            !adv.is_stable(SLOPE_TOL),
            "adversarial ρ=1.2 on line(12)/fifo must overload, slope {:+.4}",
            adv.backlog_slope
        );
        // Deterministic: same cell twice, same numbers.
        let again = run_with(ArrivalProcess::Adversarial { rate: 1.2 });
        assert_eq!(adv.committed, again.committed);
        assert_eq!(adv.backlog_end, again.backlog_end);
    }

    #[test]
    fn low_rate_is_stable_and_memory_bounded() {
        let net = topology::clique(8);
        let source = OpenLoopSource::new(
            net.clone(),
            spec_for(&net),
            ArrivalProcess::Poisson { rate: 0.1 },
            1700,
        );
        let s = run_stream(
            &net,
            source,
            GreedyPolicy::new(),
            EngineConfig::default(),
            2_000,
            500,
        );
        assert!(s.is_stable(SLOPE_TOL), "slope {:+.4}", s.backlog_slope);
        assert!(s.committed > 50);
        // Bounded-memory witness: slots never outgrow the peak live set.
        assert!(s.arena_high_water <= s.backlog_peak);
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let row = |_| {
            let net = topology::line(12);
            let source = OpenLoopSource::new(
                net.clone(),
                spec_for(&net),
                ArrivalProcess::Poisson { rate: 0.3 },
                1700,
            );
            run_stream(
                &net,
                source,
                FifoPolicy::new(),
                EngineConfig::default(),
                1_000,
                250,
            )
        };
        let (a, b) = (row(0), row(1));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.backlog_end, b.backlog_end);
        assert_eq!(a.p95_latency, b.p95_latency);
    }
}
