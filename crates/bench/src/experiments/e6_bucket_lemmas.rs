//! E6/E7 — Lemmas 3 and 4 of the bucket algorithm.
//!
//! Lemma 3: bucket levels never exceed `log2(n·D) + 1`. Lemma 4: a
//! transaction inserted into a level-i bucket at time t executes by
//! `t + (i+1)·2^(i+2)`. Both are *hard assertions* here; the table
//! reports how much headroom the implementation leaves.

use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, BucketStats};
use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec};
use dtm_offline::{BatchScheduler, LineScheduler, ListScheduler};
use dtm_sim::{run_policy, EngineConfig, RunResult};
use parking_lot::Mutex;
use std::sync::Arc;

fn run_one<A: BatchScheduler>(
    net: &Network,
    scheduler: A,
    seed: u64,
    rate: f64,
) -> (RunResult, BucketStats) {
    let spec = WorkloadSpec {
        num_objects: (net.n() as u32 / 3).max(2),
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli { rate, horizon: 40 },
    };
    let inst = WorkloadGenerator::new(spec, seed).generate(net);
    let stats = Arc::new(Mutex::new(BucketStats::default()));
    let res = run_policy(
        net,
        TraceSource::new(inst),
        BucketPolicy::new(scheduler).with_stats(Arc::clone(&stats)),
        EngineConfig::default(),
    );
    res.expect_ok();
    let s = stats.lock().clone();
    (res, s)
}

/// Run E6/E7.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E6/E7 — Lemma 3 (level <= log(nD)+1) and Lemma 4 (deadline) headroom",
        &[
            "topology",
            "txns",
            "max level",
            "lemma3 bound",
            "overflows",
            "worst deadline util",
        ],
    );
    let rate = if quick { 0.15 } else { 0.3 };
    let cases: Vec<(Network, bool)> = vec![
        (topology::line(64), true),
        (topology::grid(&[6, 6]), false),
        (topology::star(4, 8), false),
        (topology::clique(24), false),
    ];
    let mut grid = ParallelGrid::new("E6");
    for (net, use_line) in cases {
        grid.cell(move || {
            let (res, stats) = if use_line {
                run_one(&net, LineScheduler, 5, rate)
            } else {
                run_one(&net, ListScheduler::fifo(), 5, rate)
            };
            let bound = net.max_bucket_level();
            let max_level = stats.levels.values().copied().max().unwrap_or(0);
            assert!(max_level <= bound, "Lemma 3 violated on {}", net.name());
            // Lemma 4: worst utilization of the deadline budget.
            let mut worst = 0.0f64;
            for (&id, &lvl) in &stats.levels {
                let inserted = stats.inserted_at[&id];
                let commit = res.commits[&id];
                let deadline = (lvl as u64 + 1) * (1u64 << (lvl + 2));
                let used = (commit - inserted) as f64 / deadline as f64;
                assert!(
                    used <= 1.0,
                    "Lemma 4 violated for {id} on {}: used {used:.2}",
                    net.name()
                );
                worst = worst.max(used);
            }
            vec![
                net.name().to_string(),
                stats.levels.len().to_string(),
                max_level.to_string(),
                bound.to_string(),
                stats.overflows.to_string(),
                fmt_ratio(worst),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }

    // Level histogram on the line (how the probe distributes load).
    let mut hist = Table::new(
        "E6 — bucket level distribution, line(64), Bernoulli arrivals",
        &["level", "txns inserted", "activations"],
    );
    let (_, stats) = run_one(&topology::line(64), LineScheduler, 6, rate);
    let mut counts: std::collections::BTreeMap<u32, usize> = Default::default();
    for &lvl in stats.levels.values() {
        *counts.entry(lvl).or_insert(0) += 1;
    }
    for (lvl, cnt) in counts {
        hist.row(vec![
            lvl.to_string(),
            cnt.to_string(),
            stats
                .activations
                .get(&lvl)
                .copied()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    vec![t, hist]
}

#[cfg(test)]
mod tests {
    #[test]
    fn lemmas_hold_in_quick_mode() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        // run() itself asserts Lemma 3 and Lemma 4; reaching here is the test.
    }
}
