//! E3 — Theorem 3: on a clique the greedy online schedule is
//! O(k)-competitive.
//!
//! Workload: the theorem's own setting (Section III-C): every node keeps
//! one transaction outstanding (closed loop), each requesting k arbitrary
//! objects. Expectation: the measured ratio column grows roughly linearly
//! in k and stays flat as n grows; ratio/k is approximately constant.

use crate::runner::{run_summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::GreedyPolicy;
use dtm_graph::topology;
use dtm_model::WorkloadSpec;
use dtm_sim::EngineConfig;

/// Run E3.
pub fn run(quick: bool) -> Vec<Table> {
    let ns: Vec<u32> = if quick {
        vec![16, 32]
    } else {
        vec![16, 64, 128]
    };
    let ks: Vec<usize> = if quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let mut t = Table::new(
        "E3 — Theorem 3: clique greedy is O(k)-competitive",
        &["n", "k", "txns", "makespan", "ratio", "ratio/k"],
    );
    let mut grid = ParallelGrid::new("E3");
    for &n in &ns {
        for &k in &ks {
            grid.cell(move || {
                let net = topology::clique(n);
                let spec = WorkloadSpec::batch_uniform(n, k);
                let s = run_summary(
                    &net,
                    WorkloadKind::ClosedLoop {
                        spec,
                        rounds: 3,
                        seed: 1000 + n as u64 + k as u64,
                    },
                    GreedyPolicy::uniform(1),
                    EngineConfig::default(),
                );
                vec![
                    n.to_string(),
                    k.to_string(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    fmt_ratio(s.ratio),
                    fmt_ratio(s.ratio / k as f64),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratio_flat_in_n_growing_in_k() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.len(), 4);
        // Parse ratios back out of the CSV: rows are (n, k) in the loop
        // order (16,1), (16,4), (32,1), (32,4).
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let ratio = |i: usize| rows[i][4].parse::<f64>().unwrap();
        // Growing in k: ratio(k=4) > ratio(k=1) on both sizes (allow slack
        // for the conservative lower bound: require >= rather than 4x).
        assert!(ratio(1) >= ratio(0));
        assert!(ratio(3) >= ratio(2));
        // Flat-ish in n: doubling n must not double the ratio.
        assert!(ratio(2) < ratio(0) * 2.0 + 2.0);
    }
}
