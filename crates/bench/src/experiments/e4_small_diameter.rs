//! E4/E5 — Section III-D: on hypercubes, butterflies and log n-dimensional
//! grids the greedy online schedule is O(k log n)-competitive.
//!
//! Expectation: the ratio column normalized by `k * log2(n)` stays roughly
//! constant across sizes and k.

use crate::runner::{run_summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::GreedyPolicy;
use dtm_graph::{topology, Network};
use dtm_model::WorkloadSpec;
use dtm_sim::EngineConfig;

fn log2n(n: usize) -> f64 {
    (n as f64).log2()
}

fn case_row(net: Network, k: usize, seed: u64) -> Vec<String> {
    let spec = WorkloadSpec::batch_uniform((net.n() as u32).max(4), k);
    let s = run_summary(
        &net,
        WorkloadKind::ClosedLoop {
            spec,
            rounds: 2,
            seed,
        },
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    let norm = s.ratio / (k as f64 * log2n(net.n()));
    vec![
        net.name().to_string(),
        net.n().to_string(),
        k.to_string(),
        s.txns.to_string(),
        s.makespan.to_string(),
        fmt_ratio(s.ratio),
        fmt_ratio(norm),
    ]
}

/// Run E4 (hypercube) and E5 (butterfly, log n-dim grid).
pub fn run(quick: bool) -> Vec<Table> {
    let headers = [
        "topology",
        "n",
        "k",
        "txns",
        "makespan",
        "ratio",
        "ratio/(k·log n)",
    ];
    let mut t4 = Table::new("E4 — hypercube greedy is O(k log n)-competitive", &headers);
    let dims: Vec<u32> = if quick { vec![3, 5] } else { vec![3, 5, 7, 8] };
    let ks: Vec<usize> = if quick { vec![2] } else { vec![1, 2, 4] };
    let mut grid4 = ParallelGrid::new("E4");
    for &d in &dims {
        for &k in &ks {
            grid4.cell(move || case_row(topology::hypercube(d), k, 40 + d as u64 + k as u64));
        }
    }
    for row in grid4.run() {
        t4.row(row);
    }

    let mut t5 = Table::new(
        "E5 — butterfly and log n-dimensional grid greedy, O(k log n)",
        &headers,
    );
    let mut grid5 = ParallelGrid::new("E5");
    let bf_dims: Vec<u32> = if quick { vec![2] } else { vec![2, 3, 4] };
    for &d in &bf_dims {
        for &k in &ks {
            grid5.cell(move || case_row(topology::butterfly(d), k, 60 + d as u64 + k as u64));
        }
    }
    // log n-dimensional grids: side-2 grids of dimension d have n = 2^d.
    let grid_dims: Vec<usize> = if quick { vec![4] } else { vec![4, 6, 8] };
    for &d in &grid_dims {
        for &k in &ks {
            grid5.cell(move || {
                case_row(topology::grid(&vec![2u32; d]), k, 80 + d as u64 + k as u64)
            });
        }
    }
    for row in grid5.run() {
        t5.row(row);
    }
    vec![t4, t5]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_rows() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 2);
        // Normalized ratio should be a small constant (sanity threshold).
        for t in &tables {
            for line in t.to_csv().lines().skip(1) {
                let norm: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
                assert!(norm < 30.0, "normalized ratio blew up: {line}");
            }
        }
    }
}
