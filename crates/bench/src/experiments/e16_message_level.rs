//! E16 — the price of strictly local knowledge: idealized Algorithm 3
//! (timing-faithful, globally-informed leaders) vs the message-level
//! implementation (origin-chasing discovery, object-carried registries,
//! leader-local scheduling with late execution).
//!
//! Reported lateness = mean/max of `commit − target` over transactions:
//! zero for the idealized protocol (targets are guarantees), positive for
//! the message-level one (targets are optimistic under stale knowledge).

use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{DistributedBucketPolicy, DistributedMsgPolicy, MsgStats};
use dtm_graph::{topology, Network};
use dtm_model::{ClosedLoopSource, Time, WorkloadSpec};
use dtm_offline::{competitive_ratio, ListScheduler};
use dtm_sim::{run_policy, validate_events, RunResult, ValidationConfig};
use parking_lot::Mutex;
use std::sync::Arc;

fn lateness(res: &RunResult) -> (f64, Time) {
    let mut total = 0u64;
    let mut max = 0u64;
    let mut n = 0u64;
    for (txn, &commit) in &res.commits {
        if let Some(target) = res.schedule.get(*txn) {
            let late = commit.saturating_sub(target);
            total += late;
            max = max.max(late);
            n += 1;
        }
    }
    (total as f64 / n.max(1) as f64, max)
}

/// Run E16.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E16 — Algorithm 3: idealized (global-info) vs message-level (local-info)",
        &[
            "topology",
            "variant",
            "txns",
            "makespan",
            "ratio",
            "messages",
            "mean late",
            "max late",
        ],
    );
    let nets: Vec<Network> = if quick {
        vec![topology::grid(&[4, 4])]
    } else {
        vec![
            topology::line(24),
            topology::grid(&[5, 5]),
            topology::star(4, 5),
        ]
    };
    let mut grid = ParallelGrid::new("E16");
    for net in nets {
        for msg_level in [false, true] {
            let net = net.clone();
            grid.cell(move || {
                let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
                let src = ClosedLoopSource::new(net.clone(), spec, 2, 1600);
                if msg_level {
                    let stats = Arc::new(Mutex::new(MsgStats::default()));
                    let res = run_policy(
                        &net,
                        src,
                        DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 23)
                            .with_stats(Arc::clone(&stats)),
                        DistributedMsgPolicy::<ListScheduler>::engine_config(),
                    );
                    res.expect_ok();
                    validate_events(
                        &net,
                        &res,
                        &ValidationConfig {
                            speed_divisor: 2,
                            allow_late_execution: true,
                            ..ValidationConfig::default()
                        },
                    )
                    .unwrap();
                    let ratio = competitive_ratio(&net, &res);
                    let (mean_late, max_late) = lateness(&res);
                    let s = stats.lock();
                    vec![
                        net.name().to_string(),
                        format!("message-level (+{} chases)", s.chase_forwards),
                        res.metrics.committed.to_string(),
                        res.metrics.makespan.to_string(),
                        fmt_ratio(ratio.max_ratio),
                        s.messages.to_string(),
                        format!("{mean_late:.1}"),
                        max_late.to_string(),
                    ]
                } else {
                    let stats = Arc::new(Mutex::new(dtm_core::DistStats::default()));
                    let res = run_policy(
                        &net,
                        src,
                        DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 23)
                            .with_stats(Arc::clone(&stats)),
                        DistributedBucketPolicy::<ListScheduler>::engine_config(),
                    );
                    res.expect_ok();
                    validate_events(
                        &net,
                        &res,
                        &ValidationConfig {
                            speed_divisor: 2,
                            ..ValidationConfig::default()
                        },
                    )
                    .unwrap();
                    let ratio = competitive_ratio(&net, &res);
                    let (mean_late, max_late) = lateness(&res);
                    let messages = stats.lock().messages;
                    vec![
                        net.name().to_string(),
                        "idealized".into(),
                        res.metrics.committed.to_string(),
                        res.metrics.makespan.to_string(),
                        fmt_ratio(ratio.max_ratio),
                        messages.to_string(),
                        format!("{mean_late:.1}"),
                        max_late.to_string(),
                    ]
                }
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_variants_complete() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 2);
        // Idealized lateness is exactly zero.
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        // Index from the end: the topology cell may contain commas.
        let mean_late = &rows[0][rows[0].len() - 2];
        assert_eq!(mean_late, "0.0");
    }
}
