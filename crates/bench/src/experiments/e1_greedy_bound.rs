//! E1/E2 — Theorems 1 and 2: the greedy schedule's execution offset never
//! exceeds its dependency-degree bound.
//!
//! Theorem 1: a transaction generated at `t` executes by
//! `t + 2Γ'_t - Δ'_t`. Theorem 2 (uniform weights β): by `t + Γ'_t`
//! (we report against the conservative `βΔ' + β` reading). The experiment
//! runs the greedy scheduler over online workloads on several topologies
//! and reports the worst observed color/bound utilization — any value
//! above 1.00 would falsify the theorem in this implementation.

use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{GreedyPolicy, GreedyStats};
use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec};
use dtm_sim::{run_policy, EngineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

fn workload(net: &Network, k: usize, seed: u64) -> dtm_model::Instance {
    let spec = WorkloadSpec {
        num_objects: (net.n() as u32 / 2).max(2),
        k,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.25,
            horizon: 30,
        },
    };
    WorkloadGenerator::new(spec, seed).generate(net)
}

/// Run E1/E2.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: Vec<u64> = if quick { vec![1] } else { (1..=5).collect() };
    let mut t1 = Table::new(
        "E1 — Theorem 1: greedy color <= 2Γ' - Δ' (general weights)",
        &[
            "topology",
            "txns",
            "max color",
            "max bound",
            "worst util",
            "violations",
        ],
    );
    let topologies: Vec<Network> = vec![
        topology::clique(16),
        topology::line(24),
        topology::grid(&[5, 5]),
        topology::star(4, 4),
        topology::random(24, 3, 3, 7),
    ];
    let mut grid1 = ParallelGrid::new("E1");
    for net in &topologies {
        let seeds = &seeds;
        grid1.cell(move || {
            // Stats are per-cell: each topology accumulates its own
            // GreedyStats across its seeds, so cells stay independent.
            let stats = Arc::new(Mutex::new(GreedyStats::default()));
            let mut txns = 0usize;
            for &seed in seeds {
                let inst = workload(net, 3, seed);
                txns += inst.num_txns();
                let res = run_policy(
                    net,
                    TraceSource::new(inst),
                    GreedyPolicy::new().with_stats(Arc::clone(&stats)),
                    EngineConfig::default(),
                );
                res.expect_ok();
            }
            let s = stats.lock();
            let max_color = s.assigned.iter().map(|&(_, c, _)| c).max().unwrap_or(0);
            let max_bound = s.assigned.iter().map(|&(_, _, b)| b).max().unwrap_or(0);
            let worst = s
                .assigned
                .iter()
                .filter(|&&(_, _, b)| b > 0)
                .map(|&(_, c, b)| c as f64 / b as f64)
                .fold(0.0f64, f64::max);
            let violations = s.assigned.iter().filter(|&&(_, c, b)| c > b).count();
            vec![
                net.name().to_string(),
                txns.to_string(),
                max_color.to_string(),
                max_bound.to_string(),
                fmt_ratio(worst),
                violations.to_string(),
            ]
        });
    }
    for row in grid1.run() {
        t1.row(row);
    }

    let mut t2 = Table::new(
        "E2 — Theorem 2: uniform-weight greedy colors (multiples of β)",
        &[
            "topology",
            "beta",
            "txns",
            "max color",
            "worst util",
            "violations",
        ],
    );
    let uniform_cases: Vec<(Network, u64)> = vec![
        (topology::clique(16), 1),
        (topology::hypercube(4), 4),
        (topology::hypercube(5), 5),
    ];
    let mut grid2 = ParallelGrid::new("E2");
    for (net, beta) in &uniform_cases {
        let seeds = &seeds;
        grid2.cell(move || {
            let stats = Arc::new(Mutex::new(GreedyStats::default()));
            let mut txns = 0usize;
            for &seed in seeds {
                let inst = workload(net, 2, seed);
                txns += inst.num_txns();
                let res = run_policy(
                    net,
                    TraceSource::new(inst),
                    GreedyPolicy::uniform(*beta).with_stats(Arc::clone(&stats)),
                    EngineConfig::default(),
                );
                res.expect_ok();
            }
            let s = stats.lock();
            let max_color = s.assigned.iter().map(|&(_, c, _)| c).max().unwrap_or(0);
            let worst = s
                .assigned
                .iter()
                .filter(|&&(_, _, b)| b > 0)
                .map(|&(_, c, b)| c as f64 / b as f64)
                .fold(0.0f64, f64::max);
            let violations = s.assigned.iter().filter(|&&(_, c, b)| c > b).count();
            // Colors are offsets from arrival; absolute execution times are
            // the β-multiples (checked by the greedy unit tests), so here we
            // only require positivity.
            assert!(s.assigned.iter().all(|&(_, c, _)| c >= 1));
            vec![
                net.name().to_string(),
                beta.to_string(),
                txns.to_string(),
                max_color.to_string(),
                fmt_ratio(worst),
                violations.to_string(),
            ]
        });
    }
    for row in grid2.run() {
        t2.row(row);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_has_no_violations() {
        for t in super::run(true) {
            assert!(!t.is_empty());
            // The last column of every row is the violation count.
            let csv = t.to_csv();
            for line in csv.lines().skip(1) {
                assert!(line.ends_with(",0"), "violations in: {line}");
            }
        }
    }
}
