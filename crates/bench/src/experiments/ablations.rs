//! A1–A4 — ablations of the design choices DESIGN.md calls out.
//!
//! * **A1** — bucket activation period: Algorithm 2 activates level `i`
//!   every `2^i` steps; multiplying the period trades scheduling latency
//!   for batch size.
//! * **A2** — the `b_𝒜` dependence of Theorem 4: the same bucket shell
//!   around better/worse batch schedulers on a line.
//! * **A3** — the half-speed object rule of Algorithm 3 (Section V): with
//!   it vs without it (full-speed objects, doubled-network math removed).
//! * **A4** — bounded link capacity (the congestion question the paper's
//!   conclusion leaves open), via the engine's capacity + late-execution
//!   extension.
//! * **A5** — leader knowledge staleness in Algorithm 3: insertion probes
//!   from fresh global state vs from the (stale) object positions carried
//!   in each report.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy};
use dtm_graph::topology;
use dtm_model::{FiniteArrivals, ObjectChoice, WorkloadGenerator, WorkloadSpec};
use dtm_offline::{LineScheduler, ListOrder, ListScheduler};
use dtm_sim::EngineConfig;

/// Run all ablations.
pub fn run(quick: bool) -> Vec<Table> {
    vec![
        a1_activation_period(quick),
        a2_batch_scheduler_quality(quick),
        a3_half_speed(quick),
        a4_link_capacity(quick),
        a5_leader_staleness(quick),
    ]
}

fn line_workload(n: u32, seed: u64) -> WorkloadKind {
    let net = topology::line(n);
    let spec = WorkloadSpec {
        num_objects: (n / 4).max(2),
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            // ~2n transactions total regardless of n.
            rate: (2.0 / n as f64).min(0.5),
            horizon: n as u64,
        },
    };
    WorkloadKind::Trace(WorkloadGenerator::new(spec, seed).generate(&net))
}

fn a1_activation_period(quick: bool) -> Table {
    let n: u32 = if quick { 32 } else { 96 };
    let mut t = Table::new(
        "A1 — bucket activation period multiplier (line)",
        &["period mult", "makespan", "mean lat", "max lat", "ratio"],
    );
    let mut grid = ParallelGrid::new("A1");
    for &m in &[1u64, 4, 16] {
        grid.cell(move || {
            let net = topology::line(n);
            let s: Summary = run_summary(
                &net,
                line_workload(n, 2000),
                BucketPolicy::new(LineScheduler).with_period_multiplier(m),
                EngineConfig::default(),
            );
            vec![
                m.to_string(),
                s.makespan.to_string(),
                format!("{:.1}", s.mean_latency),
                s.max_latency.to_string(),
                fmt_ratio(s.ratio),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    t
}

fn a2_batch_scheduler_quality(quick: bool) -> Table {
    let n: u32 = if quick { 32 } else { 128 };
    let mut t = Table::new(
        "A2 — Theorem 4's b_𝒜 dependence: bucket around different batch schedulers (line)",
        &["batch scheduler", "makespan", "mean lat", "ratio"],
    );
    type PolicyMk = fn() -> Box<dyn dtm_sim::SchedulingPolicy>;
    let cases: Vec<(&str, PolicyMk)> = vec![
        ("line-sweep", || Box::new(BucketPolicy::new(LineScheduler))),
        ("list(fifo)", || {
            Box::new(BucketPolicy::new(ListScheduler::fifo()))
        }),
        ("list(random)", || {
            Box::new(BucketPolicy::new(ListScheduler {
                order: ListOrder::Random { seed: 5 },
            }))
        }),
    ];
    let mut grid = ParallelGrid::new("A2");
    for (name, mk) in cases {
        grid.cell(move || {
            let net = topology::line(n);
            let s = run_summary(&net, line_workload(n, 2100), mk(), EngineConfig::default());
            vec![
                name.to_string(),
                s.makespan.to_string(),
                format!("{:.1}", s.mean_latency),
                fmt_ratio(s.ratio),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    t
}

fn a3_half_speed(quick: bool) -> Table {
    let net = if quick {
        topology::grid(&[4, 4])
    } else {
        topology::grid(&[5, 5])
    };
    let mut t = Table::new(
        "A3 — Algorithm 3 half-speed object rule",
        &["objects", "makespan", "mean lat", "ratio"],
    );
    let mut grid = ParallelGrid::new("A3");
    for full_speed in [false, true] {
        let net = net.clone();
        grid.cell(move || {
            let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
            let wl = WorkloadKind::ClosedLoop {
                spec,
                rounds: 2,
                seed: 2200,
            };
            if full_speed {
                // Without the rule: full-speed objects, true-distance math.
                let full = run_summary(
                    &net,
                    wl,
                    DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 31)
                        .with_full_speed(&net),
                    EngineConfig::default(),
                );
                vec![
                    "full speed (ablation)".into(),
                    full.makespan.to_string(),
                    format!("{:.1}", full.mean_latency),
                    fmt_ratio(full.ratio),
                ]
            } else {
                // With the rule (the paper's algorithm).
                let half = run_summary(
                    &net,
                    wl,
                    DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 31),
                    DistributedBucketPolicy::<ListScheduler>::engine_config(),
                );
                vec![
                    "half speed (paper)".into(),
                    half.makespan.to_string(),
                    format!("{:.1}", half.mean_latency),
                    fmt_ratio(half.ratio),
                ]
            }
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    t
}

fn a4_link_capacity(quick: bool) -> Table {
    let net = if quick {
        topology::grid(&[4, 4])
    } else {
        topology::grid(&[6, 6])
    };
    let mut t = Table::new(
        "A4 — bounded link capacity (congestion extension, paper §VI)",
        &[
            "capacity",
            "makespan",
            "mean lat",
            "max lat",
            "peak edge load",
        ],
    );
    let spec = WorkloadSpec {
        num_objects: net.n() as u32 / 2,
        k: 2,
        object_choice: ObjectChoice::Hotspot {
            hot_objects: 2,
            hot_prob: 0.5,
        },
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.2,
            horizon: 20,
        },
    };
    let mut grid = ParallelGrid::new("A4");
    for cap in [None, Some(2u32), Some(1u32)] {
        let net = net.clone();
        let spec = spec.clone();
        grid.cell(move || {
            let inst = WorkloadGenerator::new(spec, 2300).generate(&net);
            let cfg = EngineConfig {
                link_capacity: cap,
                allow_late_execution: cap.is_some(),
                ..EngineConfig::default()
            };
            let s = run_summary(&net, WorkloadKind::Trace(inst), FifoPolicy::new(), cfg);
            vec![
                cap.map_or("unbounded".to_string(), |c| c.to_string()),
                s.makespan.to_string(),
                format!("{:.1}", s.mean_latency),
                s.max_latency.to_string(),
                s.peak_edge_load.to_string(),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    t
}

fn a5_leader_staleness(quick: bool) -> Table {
    let net = if quick {
        topology::grid(&[4, 4])
    } else {
        topology::grid(&[5, 5])
    };
    let mut t = Table::new(
        "A5 — Algorithm 3 leader knowledge: fresh vs report-carried (stale)",
        &["knowledge", "makespan", "mean lat", "ratio"],
    );
    let mut grid = ParallelGrid::new("A5");
    for stale in [false, true] {
        let net = net.clone();
        grid.cell(move || {
            let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
            let wl = WorkloadKind::ClosedLoop {
                spec,
                rounds: 2,
                seed: 2400,
            };
            let mut policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 41);
            if stale {
                policy = policy.with_stale_knowledge();
            }
            let s = run_summary(
                &net,
                wl,
                policy,
                DistributedBucketPolicy::<ListScheduler>::engine_config(),
            );
            vec![
                if stale {
                    "stale (report-carried)".into()
                } else {
                    "fresh (simulated)".into()
                },
                s.makespan.to_string(),
                format!("{:.1}", s.mean_latency),
                fmt_ratio(s.ratio),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_complete_quickly() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 5);
        for t in &tables {
            assert!(!t.is_empty(), "{} empty", t.title);
        }
    }

    #[test]
    fn capacity_never_speeds_things_up() {
        let t = super::a4_link_capacity(true);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let unbounded: u64 = rows[0][1].parse().unwrap();
        let cap1: u64 = rows[2][1].parse().unwrap();
        assert!(cap1 >= unbounded);
    }
}
