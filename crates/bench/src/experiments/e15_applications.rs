//! E15 — application benchmarks (the evaluation the paper's conclusion
//! calls for: "evaluate our algorithm against different application
//! benchmarks in a practical setting").
//!
//! Three classic TM workload families, mapped onto the data-flow model
//! (`dtm_model::presets`): bank transfers (Zipf accounts), social-graph
//! updates (celebrity hotspot), and inventory/order processing (sharded
//! locality). Each runs on a fitting topology under Algorithm 1, the
//! bucket conversion, and the FIFO baseline.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::Table;
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{presets, WorkloadGenerator, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::EngineConfig;

/// Run E15.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E15 — application benchmarks: bank / social graph / inventory",
        &[
            "benchmark",
            "topology",
            "policy",
            "txns",
            "makespan",
            "mean lat",
            "p-edge",
            "ratio",
        ],
    );
    let scale = if quick { 0.5 } else { 1.0 };
    let cases: Vec<(&str, Network, WorkloadSpec)> = vec![
        (
            "bank",
            topology::clique(16),
            presets::bank(48, 0.25 * scale, 24),
        ),
        (
            "social-graph",
            topology::hypercube(5),
            presets::social_graph(96, 3, 0.15 * scale, 24),
        ),
        (
            "inventory",
            topology::grid(&[6, 6]),
            presets::inventory(72, 2, 0.2 * scale, 24),
        ),
    ];
    for (name, net, spec) in &cases {
        let inst = WorkloadGenerator::new(spec.clone(), 7777).generate(net);
        if inst.txns.is_empty() {
            continue;
        }
        let stats = inst.stats();
        let mut push = |s: Summary| {
            t.row(vec![
                format!("{name} (l_max={})", stats.l_max),
                net.name().to_string(),
                s.policy.clone(),
                s.txns.to_string(),
                s.makespan.to_string(),
                format!("{:.1}", s.mean_latency),
                s.peak_edge_load.to_string(),
                fmt_ratio(s.ratio),
            ]);
        };
        push(run_summary(
            net,
            WorkloadKind::Trace(inst.clone()),
            GreedyPolicy::new(),
            EngineConfig::default(),
        ));
        push(run_summary(
            net,
            WorkloadKind::Trace(inst.clone()),
            BucketPolicy::new(ListScheduler::fifo()),
            EngineConfig::default(),
        ));
        push(run_summary(
            net,
            WorkloadKind::Trace(inst.clone()),
            FifoPolicy::new(),
            EngineConfig::default(),
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn applications_run_clean() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 9); // 3 benchmarks x 3 policies
    }
}
