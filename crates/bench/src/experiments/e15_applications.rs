//! E15 — application benchmarks (the evaluation the paper's conclusion
//! calls for: "evaluate our algorithm against different application
//! benchmarks in a practical setting").
//!
//! Three classic TM workload families, mapped onto the data-flow model
//! (`dtm_model::presets`): bank transfers (Zipf accounts), social-graph
//! updates (celebrity hotspot), and inventory/order processing (sharded
//! locality). Each runs on a fitting topology under Algorithm 1, the
//! bucket conversion, and the FIFO baseline.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{presets, WorkloadGenerator, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::EngineConfig;

/// Run E15.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E15 — application benchmarks: bank / social graph / inventory",
        &[
            "benchmark",
            "topology",
            "policy",
            "txns",
            "makespan",
            "mean lat",
            "p-edge",
            "ratio",
        ],
    );
    let scale = if quick { 0.5 } else { 1.0 };
    let cases: Vec<(&str, Network, WorkloadSpec)> = vec![
        (
            "bank",
            topology::clique(16),
            presets::bank(48, 0.25 * scale, 24),
        ),
        (
            "social-graph",
            topology::hypercube(5),
            presets::social_graph(96, 3, 0.15 * scale, 24),
        ),
        (
            "inventory",
            topology::grid(&[6, 6]),
            presets::inventory(72, 2, 0.2 * scale, 24),
        ),
    ];
    type PolicyMk = fn() -> Box<dyn dtm_sim::SchedulingPolicy>;
    let policies: Vec<PolicyMk> = vec![
        || Box::new(GreedyPolicy::new()),
        || Box::new(BucketPolicy::new(ListScheduler::fifo())),
        || Box::new(FifoPolicy::new()),
    ];
    let mut grid = ParallelGrid::new("E15");
    for case in &cases {
        for &mk in &policies {
            grid.cell(move || {
                let (name, net, spec) = case;
                let inst = WorkloadGenerator::new(spec.clone(), 7777).generate(net);
                if inst.txns.is_empty() {
                    return None;
                }
                let stats = inst.stats();
                let s: Summary = run_summary(
                    net,
                    WorkloadKind::Trace(inst),
                    mk(),
                    EngineConfig::default(),
                );
                Some(vec![
                    format!("{name} (l_max={})", stats.l_max),
                    net.name().to_string(),
                    s.policy.clone(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    format!("{:.1}", s.mean_latency),
                    s.peak_edge_load.to_string(),
                    fmt_ratio(s.ratio),
                ])
            });
        }
    }
    for row in grid.run().into_iter().flatten() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn applications_run_clean() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 9); // 3 benchmarks x 3 policies
    }
}
