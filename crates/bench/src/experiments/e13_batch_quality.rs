//! E13 — measuring `b_𝒜`, the batch approximation ratio that Theorem 4's
//! online competitive bound `O(b_𝒜 log^3(nD))` is parametric in.
//!
//! On small random instances (where the exact optimum is computable by
//! exhaustive search over priority orders) we report, per topology and
//! batch scheduler: the mean and worst `makespan / OPT`, and the tightness
//! `OPT / LB` of the certified lower bounds used by every competitive
//! ratio in this reproduction.

use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_graph::{topology, Network, NodeId};
use dtm_model::{ObjectId, Transaction, TxnId};
use dtm_offline::{
    batch_lower_bound, BatchContext, BatchScheduler, CliqueScheduler, ClusterScheduler,
    ExactScheduler, LineScheduler, ListScheduler, StarScheduler, TspScheduler,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_case(
    net: &Network,
    txns: usize,
    w: u32,
    k: usize,
    seed: u64,
) -> (Vec<Transaction>, BatchContext) {
    let n = net.n() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ctx = BatchContext::fresh((0..w).map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n)))));
    let pending = (0..txns)
        .map(|i| {
            let set: Vec<ObjectId> = (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
            Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
        })
        .collect();
    (pending, ctx)
}

struct Agg {
    sum: f64,
    worst: f64,
    lb_sum: f64,
    lb_worst: f64,
    cases: usize,
}

/// Run E13.
pub fn run(quick: bool) -> Vec<Table> {
    let cases = if quick { 15 } else { 100 };
    let mut t = Table::new(
        "E13 — batch approximation ratios b_𝒜 vs exact OPT (small instances)",
        &[
            "topology",
            "scheduler",
            "cases",
            "mean b_A",
            "worst b_A",
            "mean OPT/LB",
            "worst OPT/LB",
        ],
    );
    type NetMk = fn() -> Network;
    type Mk = fn() -> Box<dyn BatchScheduler>;
    let setups: Vec<(NetMk, Vec<(&str, Mk)>)> = vec![
        (
            || topology::clique(8),
            vec![
                (
                    "clique-coloring",
                    (|| Box::new(CliqueScheduler) as Box<dyn BatchScheduler>) as Mk,
                ),
                ("list(fifo)", || Box::new(ListScheduler::fifo())),
                ("tsp-tour", || Box::new(TspScheduler)),
            ],
        ),
        (
            || topology::line(12),
            vec![
                (
                    "line-sweep",
                    (|| Box::new(LineScheduler) as Box<dyn BatchScheduler>) as Mk,
                ),
                ("list(fifo)", || Box::new(ListScheduler::fifo())),
                ("tsp-tour", || Box::new(TspScheduler)),
            ],
        ),
        (
            || topology::cluster(3, 3, 4),
            vec![
                (
                    "cluster(2-phase)",
                    (|| Box::new(ClusterScheduler::default()) as Box<dyn BatchScheduler>) as Mk,
                ),
                ("list(fifo)", || Box::new(ListScheduler::fifo())),
            ],
        ),
        (
            || topology::star(3, 3),
            vec![
                (
                    "star(randomized)",
                    (|| Box::new(StarScheduler::default()) as Box<dyn BatchScheduler>) as Mk,
                ),
                ("list(fifo)", || Box::new(ListScheduler::fifo())),
            ],
        ),
    ];
    let mut grid = ParallelGrid::new("E13");
    for (net_mk, schedulers) in setups {
        for (name, mk) in schedulers {
            grid.cell(move || {
                let net = net_mk();
                let mut agg = Agg {
                    sum: 0.0,
                    worst: 0.0,
                    lb_sum: 0.0,
                    lb_worst: 0.0,
                    cases: 0,
                };
                for seed in 0..cases {
                    let (pending, ctx) = random_case(&net, 6, 3, 2, 7000 + seed);
                    let opt = ExactScheduler
                        .schedule(&net, &pending, &ctx)
                        .makespan_end()
                        .unwrap_or(0)
                        .max(1);
                    let heur = mk()
                        .schedule(&net, &pending, &ctx)
                        .makespan_end()
                        .unwrap_or(0);
                    let b_a = heur as f64 / opt as f64;
                    assert!(b_a >= 0.999, "heuristic beat the optimum?! {name}");
                    let lb = batch_lower_bound(&net, &pending, &ctx).combined();
                    let tight = opt as f64 / lb as f64;
                    agg.sum += b_a;
                    agg.worst = agg.worst.max(b_a);
                    agg.lb_sum += tight;
                    agg.lb_worst = agg.lb_worst.max(tight);
                    agg.cases += 1;
                }
                vec![
                    net.name().to_string(),
                    name.to_string(),
                    agg.cases.to_string(),
                    fmt_ratio(agg.sum / agg.cases as f64),
                    fmt_ratio(agg.worst),
                    fmt_ratio(agg.lb_sum / agg.cases as f64),
                    fmt_ratio(agg.lb_worst),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn heuristics_never_beat_opt() {
        // run() asserts b_A >= 1 internally.
        let tables = super::run(true);
        assert!(tables[0].len() >= 8);
    }
}
