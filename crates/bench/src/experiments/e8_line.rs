//! E8 — Section IV-D, line graphs: the bucket conversion of the line batch
//! scheduler is O(log^3 n)-competitive, while coloring-style greedy and
//! FIFO degrade polynomially on large-diameter graphs.
//!
//! Expectation: the bucket(line) ratio grows polylogarithmically with n
//! (the `ratio/log^3 n` column shrinks or stays flat), and the gap to the
//! baselines widens with n.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::topology;
use dtm_model::{FiniteArrivals, Instance, ObjectChoice, WorkloadGenerator, WorkloadSpec};
use dtm_offline::LineScheduler;
use dtm_sim::EngineConfig;

fn workload(n: u32, seed: u64) -> Instance {
    let net = topology::line(n);
    let spec = WorkloadSpec {
        num_objects: (n / 4).max(2),
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            // Per-node rate scaled by 1/n: expected total transactions are
            // ~2n regardless of size, so sweeps stay comparable and the
            // workload does not explode quadratically.
            rate: (2.0 / n as f64).min(0.5),
            horizon: n as u64,
        },
    };
    WorkloadGenerator::new(spec, seed).generate(&net)
}

/// Run E8.
pub fn run(quick: bool) -> Vec<Table> {
    let ns: Vec<u32> = if quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256, 512]
    };
    let mut t = Table::new(
        "E8 — line graph: bucket(line-sweep) O(log^3 n) vs baselines",
        &[
            "n",
            "policy",
            "txns",
            "makespan",
            "max latency",
            "ratio",
            "ratio/log^3 n",
        ],
    );
    type PolicyMk = fn() -> Box<dyn dtm_sim::SchedulingPolicy>;
    let policies: Vec<PolicyMk> = vec![
        || Box::new(BucketPolicy::new(LineScheduler)),
        || Box::new(GreedyPolicy::new()),
        || Box::new(FifoPolicy::new()),
        || Box::new(TspPolicy::new()),
    ];
    let mut grid = ParallelGrid::new("E8");
    for &n in &ns {
        for &mk in &policies {
            grid.cell(move || {
                // Each cell regenerates the (deterministic) instance for
                // its size, so cells share no state.
                let net = topology::line(n);
                let log3 = (n as f64).log2().powi(3);
                let inst = workload(n, 300 + n as u64);
                let s: Summary = run_summary(
                    &net,
                    WorkloadKind::Trace(inst),
                    mk(),
                    EngineConfig::default(),
                );
                vec![
                    n.to_string(),
                    s.policy.clone(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    s.max_latency.to_string(),
                    fmt_ratio(s.ratio),
                    fmt_ratio(s.ratio / log3),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_all_policies() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.len(), 8); // 2 sizes x 4 policies
                                // bucket rows exist and their normalized column is finite.
        let csv = t.to_csv();
        assert!(csv.contains("bucket(line-sweep)"));
    }
}
