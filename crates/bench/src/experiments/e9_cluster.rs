//! E9 — Section IV-D, cluster graphs: bucket conversion of the two-phase
//! cluster scheduler, `O(min(kβ, log_c^k m) · log^3(nγ))`-competitive.
//!
//! Sweeps α (cliques), β (clique size), γ (bridge weight) and k, comparing
//! the bucket(cluster) schedule to FIFO and greedy. Expectation: the
//! bucket ratio tracks `min(kβ, ·) · polylog` — in particular it grows
//! with k and β but stays moderate as γ (and hence the diameter) grows,
//! where FIFO degrades.

use crate::runner::{run_summary, Summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::WorkloadSpec;
use dtm_offline::ClusterScheduler;
use dtm_sim::EngineConfig;

/// Run E9.
pub fn run(quick: bool) -> Vec<Table> {
    let cases: Vec<(u32, u32, u64, usize)> = if quick {
        vec![(3, 4, 4, 2), (3, 4, 16, 2)]
    } else {
        vec![
            (4, 4, 4, 1),
            (4, 4, 4, 4),
            (8, 4, 4, 2),
            (4, 8, 8, 2),
            (4, 4, 32, 2),
            (4, 4, 128, 2),
        ]
    };
    let mut t = Table::new(
        "E9 — cluster graph: bucket(cluster) vs baselines",
        &["α", "β", "γ", "k", "policy", "txns", "makespan", "ratio"],
    );
    type PolicyMk = fn() -> Box<dyn dtm_sim::SchedulingPolicy>;
    let policies: Vec<PolicyMk> = vec![
        || Box::new(BucketPolicy::new(ClusterScheduler::default())),
        || Box::new(GreedyPolicy::new()),
        || Box::new(FifoPolicy::new()),
    ];
    let mut grid = ParallelGrid::new("E9");
    for &(alpha, beta, gamma, k) in &cases {
        for &mk in &policies {
            grid.cell(move || {
                let net = topology::cluster(alpha, beta, gamma.max(beta as u64));
                let spec = WorkloadSpec::batch_uniform(alpha * beta, k);
                let s: Summary = run_summary(
                    &net,
                    WorkloadKind::ClosedLoop {
                        spec,
                        rounds: 2,
                        seed: 900,
                    },
                    mk(),
                    EngineConfig::default(),
                );
                vec![
                    alpha.to_string(),
                    beta.to_string(),
                    gamma.to_string(),
                    k.to_string(),
                    s.policy.clone(),
                    s.txns.to_string(),
                    s.makespan.to_string(),
                    fmt_ratio(s.ratio),
                ]
            });
        }
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_completes() {
        let tables = super::run(true);
        assert_eq!(tables[0].len(), 6);
    }
}
