//! E11 — Theorem 5: the distributed bucket schedule pays a polylog
//! overhead over the centralized bucket schedule.
//!
//! Same workload, same batch scheduler: Algorithm 2 with instant central
//! knowledge (objects at full speed) vs Algorithm 3 over the sparse cover
//! (half-speed objects, discovery + report + notify latencies, leader-held
//! partial buckets). The table reports the end-to-end overhead factor and
//! the protocol's message counts — the price of decentralization the
//! theorems trade against (log^3 → log^9).

use crate::runner::{run_summary, WorkloadKind};
use crate::table::fmt_ratio;
use crate::{ParallelGrid, Table};
use dtm_core::{BucketPolicy, DistStats, DistributedBucketPolicy};
use dtm_graph::{topology, Network};
use dtm_model::WorkloadSpec;
use dtm_offline::ListScheduler;
use dtm_sim::EngineConfig;
use parking_lot::Mutex;
use std::sync::Arc;

/// Run E11.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E11 — Theorem 5: distributed vs centralized bucket schedule",
        &[
            "topology",
            "txns",
            "central makespan",
            "dist makespan",
            "overhead",
            "central ratio",
            "dist ratio",
            "messages",
            "max report lat",
        ],
    );
    let nets: Vec<Network> = if quick {
        vec![topology::line(16), topology::grid(&[4, 4])]
    } else {
        vec![
            topology::line(32),
            topology::grid(&[5, 5]),
            topology::star(4, 6),
            topology::cluster(3, 4, 4),
        ]
    };
    let mut grid = ParallelGrid::new("E11");
    for net in nets {
        grid.cell(move || {
            let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
            let wl = |seed: u64| WorkloadKind::ClosedLoop {
                spec: spec.clone(),
                rounds: 2,
                seed,
            };
            let central = run_summary(
                &net,
                wl(1100),
                BucketPolicy::new(ListScheduler::fifo()),
                EngineConfig::default(),
            );
            let stats = Arc::new(Mutex::new(DistStats::default()));
            let dist_policy = DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 17)
                .with_stats(Arc::clone(&stats));
            let dist = run_summary(
                &net,
                wl(1100),
                dist_policy,
                DistributedBucketPolicy::<ListScheduler>::engine_config(),
            );
            let s = stats.lock();
            let overhead = dist.makespan as f64 / central.makespan.max(1) as f64;
            vec![
                net.name().to_string(),
                central.txns.to_string(),
                central.makespan.to_string(),
                dist.makespan.to_string(),
                fmt_ratio(overhead),
                fmt_ratio(central.ratio),
                fmt_ratio(dist.ratio),
                s.messages.to_string(),
                s.report_latency
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0)
                    .to_string(),
            ]
        });
    }
    for row in grid.run() {
        t.row(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn distributed_pays_bounded_overhead() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.len(), 2);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let overhead: f64 = cells[4].parse().unwrap();
            assert!(overhead >= 1.0, "distribution cannot be free: {line}");
            assert!(
                overhead < 200.0,
                "overhead should be polylog-ish, got {line}"
            );
        }
    }
}
