//! The experiment suite (see EXPERIMENTS.md for the claim ↔ experiment
//! mapping and recorded results).
//!
//! Every experiment exposes `run(quick: bool) -> Vec<Table>`; `quick`
//! shrinks parameter grids for smoke tests and CI.

pub mod ablations;
pub mod e10_star;
pub mod e11_distributed;
pub mod e12_shootout;
pub mod e13_batch_quality;
pub mod e14_variance;
pub mod e15_applications;
pub mod e16_message_level;
pub mod e17_stability;
pub mod e18_substrate_scale;
pub mod e1_greedy_bound;
pub mod e3_clique;
pub mod e4_small_diameter;
pub mod e6_bucket_lemmas;
pub mod e8_line;
pub mod e9_cluster;

use crate::Table;

/// Run every experiment (used by `exp_all`).
pub fn run_all(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(e1_greedy_bound::run(quick));
    tables.extend(e3_clique::run(quick));
    tables.extend(e4_small_diameter::run(quick));
    tables.extend(e6_bucket_lemmas::run(quick));
    tables.extend(e8_line::run(quick));
    tables.extend(e9_cluster::run(quick));
    tables.extend(e10_star::run(quick));
    tables.extend(e11_distributed::run(quick));
    tables.extend(e12_shootout::run(quick));
    tables.extend(e13_batch_quality::run(quick));
    tables.extend(e14_variance::run(quick));
    tables.extend(e15_applications::run(quick));
    tables.extend(e16_message_level::run(quick));
    tables.extend(e17_stability::run(quick));
    tables.extend(e18_substrate_scale::run(quick));
    tables.extend(ablations::run(quick));
    tables
}
