//! E18 — substrate scale-decade sweep: the CSR spine and tiered routing
//! oracles on 10²–10⁵-node networks.
//!
//! The paper's analysis is asymptotic in `n` and `D`, but all earlier
//! experiments run on networks of a few hundred nodes where an all-pairs
//! distance table is affordable. This sweep walks the three large-graph
//! generators (random geometric, preferential-attachment power law, and
//! the fog/cloud tree) up a decade ladder and records, per decade:
//!
//! * **E18a** — which routing tier serves the network (dense table,
//!   lazy trees, landmark oracle, or closed-form structured routing),
//!   its size, and the diameter bound the schedulers will consume;
//! * **E18b** — routing fidelity spot checks against exact Dijkstra:
//!   reported distances must be symmetric, within the advertised
//!   additive slack `2R` of the true distance, and *walkable* — greedily
//!   following `hop_toward` must reach the target at a cost no larger
//!   than the reported distance (the invariant the simulator's
//!   `MissedExecution` check relies on);
//! * **E18c** — a short open-system engine run per decade under the
//!   [`dtm_model::presets::edge_sensors`] telemetry workload, witnessing
//!   that the full kernel (forwarding, conflict maintenance, streaming
//!   retirement) stays bounded at scales where per-node state would blow
//!   up if anything were accidentally `O(n)` per live transaction.
//!
//! Tables contain only deterministic quantities (counts, exact
//! distances, seeded-run outcomes) so `exp_all --quick` stays
//! byte-identical at any `--jobs` level; wall-clock numbers live in the
//! `substrate/scale/*` Criterion benches and the `BENCH_substrate.json`
//! ledger instead.

use crate::runner::{run_stream_labeled, StreamSummary};
use crate::{ParallelGrid, Table};
use dtm_core::GreedyPolicy;
use dtm_graph::{topology, Network, NodeId, ShortestPathTree};
use dtm_model::{presets, ArrivalProcess, OpenLoopSource};
use dtm_sim::EngineConfig;

/// Backlog-slope tolerance for the E18c stability verdict (matches
/// [`crate::experiments::e17_stability::SLOPE_TOL`]).
const SLOPE_TOL: f64 = 0.02;

/// Fog-tree shape whose node count lands nearest the requested decade
/// (ternary tree: `(3^levels - 1) / 2` nodes).
fn fog_levels_for(n: usize) -> u32 {
    let count = |l: u32| (3u64.pow(l) - 1) / 2;
    (1..=12)
        .min_by_key(|&l| count(l).abs_diff(n as u64))
        .unwrap()
}

/// The three scale-ladder generators at (roughly) `n` nodes.
fn nets_at(n: usize) -> Vec<Network> {
    vec![
        topology::geometric(n as u32, 4, 18),
        topology::power_law(n as u32, 2, 18),
        topology::fog_tree(fog_levels_for(n), 3),
    ]
}

/// Short generator label for table rows (`geometric(n=..)` is too wide
/// once every decade appears).
fn kind(net: &Network) -> &'static str {
    let name = net.name();
    if name.starts_with("geometric") {
        "geometric"
    } else if name.starts_with("powerlaw") {
        "power-law"
    } else {
        "fog-tree"
    }
}

/// Fidelity spot-check outcome for one network.
struct Fidelity {
    pairs: usize,
    /// Largest observed `reported - true` over the sampled pairs.
    max_slack: u64,
    /// Advertised additive bound (`2R`; 0 on exact tiers).
    slack_bound: u64,
    symmetric: bool,
    walkable: bool,
}

/// Compare the network's reported distances and greedy routes against
/// exact shortest-path trees from a few spread-out roots.
fn spot_check(net: &Network) -> Fidelity {
    let n = net.n();
    let roots = [0usize, n / 2, n - 1];
    let stride = (n / 7).max(1);
    let mut out = Fidelity {
        pairs: 0,
        max_slack: 0,
        slack_bound: net.distance_slack(),
        symmetric: true,
        walkable: true,
    };
    for &r in &roots {
        let root = NodeId(r as u32);
        let exact = ShortestPathTree::compute(net.graph(), root);
        for v in (0..n).step_by(stride) {
            let v = NodeId(v as u32);
            if v == root {
                continue;
            }
            out.pairs += 1;
            let reported = net.distance(root, v);
            let truth = exact.dist(v);
            out.symmetric &= net.distance(v, root) == reported;
            out.max_slack = out.max_slack.max(reported.saturating_sub(truth));
            // Walk the greedy route root -> v; it must arrive within
            // `reported` total weight (and certainly within n hops).
            let mut at = root;
            let mut cost = 0u64;
            let mut hops = 0usize;
            while at != v && hops <= n {
                let (next, w) = net.hop_toward(at, v);
                cost += w;
                at = next;
                hops += 1;
            }
            out.walkable &= at == v && cost <= reported;
        }
    }
    out
}

/// Run E18.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: Vec<usize> = if quick {
        vec![100, 1_000]
    } else {
        vec![100, 1_000, 10_000, 100_000]
    };
    let (steps, warmup) = if quick { (500u64, 125u64) } else { (1_500, 375) };

    // Every (size, generator) cell builds its network inside the cell —
    // construction cost is part of what the decade ladder exercises, and
    // cells stay independent for the job pool.
    let mut grid = ParallelGrid::new("E18");
    for &n in &sizes {
        for g in 0..3usize {
            grid.cell(move || {
                let net = nets_at(n)[g].clone();
                let fidelity = spot_check(&net);
                // One object per 5 nodes with a locality radius wide
                // enough to catch the nearest object on every generator
                // (object spacing on the geometric decade ladder is
                // ~25-30 in weighted distance), widened by the landmark
                // tier's additive slack so reported-distance filtering
                // still admits truly nearby objects: fetches stay local,
                // so the service rate is set by nearby hops, not `D`.
                let radius = 48 + net.distance_slack();
                let spec = presets::edge_sensors(net.n() as u32, 5, radius, 0.0, 0);
                let source = OpenLoopSource::new(
                    net.clone(),
                    spec,
                    ArrivalProcess::Poisson { rate: 0.4 },
                    1800,
                );
                let label = format!("e18-{}-greedy-sensors", net.name());
                let s = run_stream_labeled(
                    &label,
                    &net,
                    source,
                    GreedyPolicy::new(),
                    EngineConfig::default(),
                    steps,
                    warmup,
                );
                (net, fidelity, s)
            });
        }
    }
    let cells: Vec<(Network, Fidelity, StreamSummary)> = grid.run();

    let mut tiers = Table::new(
        "E18a — routing substrate per scale decade",
        &[
            "generator",
            "nodes",
            "edges",
            "tier",
            "diameter ≤",
            "dist slack ≤",
        ],
    );
    for (net, _, _) in &cells {
        tiers.row(vec![
            kind(net).to_string(),
            net.n().to_string(),
            net.graph().edge_count().to_string(),
            net.routing_tier().to_string(),
            net.diameter().to_string(),
            net.distance_slack().to_string(),
        ]);
    }

    let mut fid = Table::new(
        "E18b — routing fidelity vs exact Dijkstra (sampled pairs)",
        &[
            "generator",
            "nodes",
            "pairs",
            "max obs slack",
            "slack bound",
            "symmetric",
            "walkable ≤ reported",
        ],
    );
    for (net, f, _) in &cells {
        fid.row(vec![
            kind(net).to_string(),
            net.n().to_string(),
            f.pairs.to_string(),
            f.max_slack.to_string(),
            f.slack_bound.to_string(),
            if f.symmetric { "yes" } else { "VIOLATED" }.to_string(),
            if f.walkable { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }

    let mut stream = Table::new(
        "E18c — open-system edge-telemetry run per decade (greedy, Poisson ρ=0.4)",
        &[
            "generator",
            "nodes",
            "committed",
            "backlog@end",
            "arena hwm",
            "slope/step",
            "p95 lat",
            "verdict",
        ],
    );
    for (net, _, s) in &cells {
        // "stable" = backlog flat within SLOPE_TOL; "bounded" = memory
        // invariants hold but the backlog is still ramping toward its
        // plateau (on the landmark decades sojourn times are comparable
        // to the run horizon); "UNBOUNDED" = arena outgrew the live set
        // or the backlog passed the hard cap.
        let bounded = s.arena_high_water <= s.backlog_peak && s.backlog_peak < 2_000;
        stream.row(vec![
            kind(net).to_string(),
            net.n().to_string(),
            s.committed.to_string(),
            s.backlog_end.to_string(),
            s.arena_high_water.to_string(),
            format!("{:+.4}", s.backlog_slope),
            s.p95_latency.to_string(),
            if bounded && s.is_stable(SLOPE_TOL) {
                "stable"
            } else if bounded {
                "bounded"
            } else {
                "UNBOUNDED"
            }
            .to_string(),
        ]);
    }

    vec![tiers, fid, stream]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_sweep_completes() {
        let tables = run(true);
        // 2 decades x 3 generators in every table.
        assert_eq!(tables[0].len(), 6);
        assert_eq!(tables[1].len(), 6);
        assert_eq!(tables[2].len(), 6);
    }

    #[test]
    fn fidelity_holds_on_every_quick_cell() {
        for &n in &[100usize, 1_000] {
            for net in nets_at(n) {
                let f = spot_check(&net);
                assert!(f.symmetric, "{} asymmetric", net.name());
                assert!(f.walkable, "{} route overran estimate", net.name());
                assert!(
                    f.max_slack <= f.slack_bound,
                    "{}: slack {} > bound {}",
                    net.name(),
                    f.max_slack,
                    f.slack_bound
                );
            }
        }
    }

    #[test]
    fn fog_levels_track_decades() {
        assert_eq!(fog_levels_for(100), 5); // 121 nodes
        assert_eq!(fog_levels_for(1_000), 7); // 1093
        assert_eq!(fog_levels_for(10_000), 9); // 9841
        assert_eq!(fog_levels_for(100_000), 11); // 88573
    }
}
