//! [`ParallelGrid`]: the fan-out primitive every experiment module runs
//! on.
//!
//! An experiment is a grid of independent cells — `(policy, topology,
//! param)` tuples, each a self-contained [`crate::run_summary`] call with
//! its own seed. `ParallelGrid` collects those cells as closures in
//! declaration order, fans them across the rayon pool, and returns the
//! results **in declaration order**, so a table assembled from the
//! returned rows is byte-identical whether the grid ran on 1 thread or
//! 16 (`--jobs N`; pinned by `crates/bench/tests/parallel_harness.rs`).
//!
//! The grid's label (the experiment id, e.g. `"E3"`) is installed as the
//! sidecar scope around every cell, so telemetry sidecars written inside
//! a cell are named by the experiment they belong to (see
//! [`crate::runner::with_sidecar_scope`]).

use rayon::prelude::*;

/// An ordered collection of independent experiment cells, executed in
/// parallel, reassembled in declaration order.
pub struct ParallelGrid<'env, R: Send> {
    label: String,
    cells: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
}

impl<'env, R: Send + 'env> ParallelGrid<'env, R> {
    /// New empty grid labeled with its experiment id.
    pub fn new(label: impl Into<String>) -> Self {
        ParallelGrid {
            label: label.into(),
            cells: Vec::new(),
        }
    }

    /// Append one cell. Cells must be independent: each should derive
    /// everything it needs (network, workload, policy) from its captured
    /// parameters and its own seed — never from shared mutable state.
    pub fn cell(&mut self, f: impl FnOnce() -> R + Send + 'env) {
        self.cells.push(Box::new(f));
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells were queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Execute every cell across the pool; results come back in the
    /// order the cells were declared, independent of thread count. A
    /// panicking cell (a run with violations, a falsified theorem bound)
    /// panics the whole grid — experiments must fail loudly.
    pub fn run(self) -> Vec<R> {
        let label = self.label;
        self.cells
            .into_par_iter()
            .map(move |cell| crate::runner::with_sidecar_scope(&label, cell))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_declaration_order() {
        let mut grid = ParallelGrid::new("test");
        for i in 0..64u64 {
            grid.cell(move || i * 3);
        }
        let out = rayon::with_num_threads(4, || grid.run());
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn cells_may_borrow_the_environment() {
        let base = [10u64, 20, 30];
        let mut grid = ParallelGrid::new("test");
        for (i, b) in base.iter().enumerate() {
            grid.cell(move || b + i as u64);
        }
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_empty());
        assert_eq!(grid.run(), vec![10, 21, 32]);
    }
}
