//! Criterion micro-benchmarks of the substrates: shortest paths, sparse
//! cover construction, weighted coloring, batch scheduling, lower bounds,
//! the runtime-state query layer and a full engine run. These dominate
//! each simulated "time step" in practice.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_core::{smallest_valid_color, ColorConstraint, GreedyPolicy};
use dtm_graph::{topology, NodeId, ShortestPathTree, SparseCover};
use dtm_model::{
    FiniteArrivals, ObjectChoice, ObjectId, ObjectInfo, TraceSource, Transaction, TxnId,
    WorkloadGenerator, WorkloadSpec,
};
use dtm_offline::{batch_lower_bound, BatchContext, BatchScheduler, ListScheduler};
use dtm_sim::{
    run_policy, Engine, EngineConfig, LiveTxn, ObjectPlace, ObjectState, RuntimeState, SystemView,
};
use dtm_telemetry::{MetricsRegistry, TelemetrySink};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn bench_dijkstra(c: &mut Criterion) {
    let net = topology::grid(&[32, 32]);
    c.bench_function("substrate/dijkstra/grid32x32", |b| {
        b.iter(|| {
            let t = ShortestPathTree::compute(net.graph(), NodeId(0));
            std::hint::black_box(t.eccentricity())
        })
    });
}

fn bench_sparse_cover(c: &mut Criterion) {
    let net = topology::line(64);
    c.bench_function("substrate/sparse-cover/line64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cover = SparseCover::build(&net, seed);
            std::hint::black_box(cover.num_layers())
        })
    });
}

fn bench_coloring(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let constraints: Vec<ColorConstraint> = (0..1000)
        .map(|_| ColorConstraint::new(rng.gen_range(0..5000), rng.gen_range(1..30)))
        .collect();
    c.bench_function("substrate/smallest-valid-color/1000-constraints", |b| {
        b.iter(|| std::hint::black_box(smallest_valid_color(&constraints)))
    });
}

fn batch_instance(
    n: u32,
    txns: usize,
    w: u32,
    k: usize,
    seed: u64,
) -> (Vec<Transaction>, BatchContext) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ctx = BatchContext::fresh((0..w).map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n)))));
    let pending: Vec<Transaction> = (0..txns)
        .map(|i| {
            let set: Vec<ObjectId> = (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
            Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
        })
        .collect();
    (pending, ctx)
}

fn bench_list_scheduler(c: &mut Criterion) {
    let net = topology::grid(&[16, 16]);
    let (pending, ctx) = batch_instance(256, 200, 64, 3, 11);
    c.bench_function("substrate/list-scheduler/200-txns", |b| {
        b.iter(|| {
            let s = ListScheduler::fifo().schedule(&net, &pending, &ctx);
            std::hint::black_box(s.makespan_end())
        })
    });
}

fn bench_lower_bound(c: &mut Criterion) {
    let net = topology::grid(&[16, 16]);
    let (pending, ctx) = batch_instance(256, 200, 64, 3, 12);
    c.bench_function("substrate/lower-bound/200-txns", |b| {
        b.iter(|| std::hint::black_box(batch_lower_bound(&net, &pending, &ctx).combined()))
    });
}

/// One live population two ways: map-backed (the legacy `SystemView::new`
/// backing, where `requesters_of` rescans every live transaction) and
/// arena-backed (the requester index answers directly).
fn live_population(
    seed: u64,
) -> (
    BTreeMap<TxnId, LiveTxn>,
    BTreeMap<ObjectId, ObjectState>,
    RuntimeState,
) {
    const N_NODES: u32 = 256; // hypercube(8)
    const N_TXNS: u64 = 512;
    const N_OBJS: u32 = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut live = BTreeMap::new();
    let mut objects = BTreeMap::new();
    let mut state = RuntimeState::new();
    for o in 0..N_OBJS {
        let st = ObjectState {
            info: ObjectInfo {
                id: ObjectId(o),
                origin: NodeId(rng.gen_range(0..N_NODES)),
                created_at: 0,
            },
            place: ObjectPlace::At(NodeId(rng.gen_range(0..N_NODES))),
            last_holder: None,
        };
        objects.insert(ObjectId(o), st.clone());
        state.insert_object(st);
    }
    for id in 0..N_TXNS {
        let set: Vec<ObjectId> = (0..2).map(|_| ObjectId(rng.gen_range(0..N_OBJS))).collect();
        let lt = LiveTxn {
            txn: Transaction::new(TxnId(id), NodeId(rng.gen_range(0..N_NODES)), set, 0),
            scheduled: (id % 2 == 0).then_some(id),
        };
        live.insert(TxnId(id), lt.clone());
        state.insert_txn(lt);
    }
    (live, objects, state)
}

fn bench_requesters_of(c: &mut Criterion) {
    let net = topology::hypercube(8);
    let (live, objects, state) = live_population(17);
    c.bench_function("substrate/requesters-of/maps-scan-512txns", |b| {
        let view = SystemView::new(0, &net, &live, &objects);
        b.iter(|| {
            let mut total = 0usize;
            for o in 0..64u32 {
                total += view.requesters_of(ObjectId(o)).len();
            }
            std::hint::black_box(total)
        })
    });
    c.bench_function("substrate/requesters-of/indexed-512txns", |b| {
        let view = SystemView::from_state(0, &net, &state);
        b.iter(|| {
            let mut total = 0usize;
            for o in 0..64u32 {
                total += view.requesters_of(ObjectId(o)).len();
            }
            std::hint::black_box(total)
        })
    });
}

fn bench_engine_run(c: &mut Criterion) {
    let net = topology::hypercube(8);
    let spec = WorkloadSpec {
        num_objects: 32,
        k: 2,
        object_choice: ObjectChoice::Uniform,
        // Bernoulli is per node per step: 256 nodes × 0.004 × 1000 steps
        // ≈ 1000 transactions over the 1000-step arrival window.
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.004,
            horizon: 1000,
        },
    };
    let inst = WorkloadGenerator::new(spec, 23).generate(&net);
    let cfg = EngineConfig {
        record_events: false,
        ..EngineConfig::default()
    };
    c.bench_function("substrate/engine/greedy-hypercube8-1000steps", |b| {
        b.iter(|| {
            let res = run_policy(
                &net,
                TraceSource::new(inst.clone()),
                GreedyPolicy::new(),
                cfg.clone(),
            );
            std::hint::black_box(res.metrics.committed)
        })
    });
    // Same run driven tick-by-tick through the step kernel's public
    // stepping API instead of `finish()`'s internal loop: measures the
    // per-step overhead of the tickable driver (budget: <= 2% of the
    // bare engine row above, which itself runs on the kernel).
    c.bench_function("substrate/engine/kernel-tick-1000steps", |b| {
        b.iter(|| {
            let mut kernel = Engine::new(net.clone(), GreedyPolicy::new(), cfg.clone())
                .into_kernel(TraceSource::new(inst.clone()));
            let mut effects_seen = 0usize;
            while let Some(fx) = kernel.tick() {
                effects_seen += usize::from(!fx.is_empty());
            }
            let res = kernel.finish();
            std::hint::black_box((res.metrics.committed, effects_seen))
        })
    });
    // Same run with a live telemetry sink attached (default timing
    // sampling): the observability overhead budget is <= 2% of the bare
    // engine row above.
    c.bench_function(
        "substrate/engine/greedy-hypercube8-1000steps-telemetry",
        |b| {
            b.iter(|| {
                let registry = Arc::new(MetricsRegistry::new());
                let sink = Arc::new(Mutex::new(TelemetrySink::new(Arc::clone(&registry))));
                let res = Engine::new(net.clone(), GreedyPolicy::new(), cfg.clone())
                    .with_observer(Arc::clone(&sink))
                    .run(TraceSource::new(inst.clone()));
                std::hint::black_box(res.metrics.committed)
            })
        },
    );
    // Same run with the continuous-observability stack attached: flight
    // recorder (default K) + health watchdogs. Budget: <= 2% over the
    // bare engine row — the recorder writes one Copy record per step
    // into a preallocated ring and the watchdogs update O(1) detectors.
    // The recorder/monitor are constructed once outside the timing loop:
    // they are long-run black boxes (built once, then riding 10^6-step
    // runs), so the row measures their per-step cost, not the one-time
    // O(K) ring allocation; reuse across iterations is sound because a
    // finished run retires every live transaction, leaving the monitor's
    // tracking state empty.
    c.bench_function(
        "substrate/engine/greedy-hypercube8-1000steps-flightrec",
        |b| {
            let recorder = dtm_telemetry::flight_recorder(dtm_telemetry::DEFAULT_FLIGHT_K);
            let monitor = dtm_telemetry::health_monitor(dtm_telemetry::HealthConfig::default());
            b.iter(|| {
                let stack = dtm_telemetry::ObservabilityStack::new(
                    Arc::clone(&recorder),
                    Arc::clone(&monitor),
                );
                let res = Engine::new(net.clone(), GreedyPolicy::new(), cfg.clone())
                    .with_observer(stack)
                    .run(TraceSource::new(inst.clone()));
                let seen = recorder.lock().steps_seen();
                std::hint::black_box((res.metrics.committed, seen))
            })
        },
    );
}

/// Scale-decade rows for the CSR spine and the landmark oracle (ledger
/// rows under `substrate/scale/` carry a `nodes` field in
/// BENCH_substrate.json). Measures, per decade: full generator+Network
/// construction, the one-time landmark-oracle build (k shortest-path
/// trees on the CSR graph), and steady-state oracle distance queries.
fn bench_scale(c: &mut Criterion) {
    for &n in &[10_000u32, 100_000] {
        c.bench_function(&format!("substrate/scale/geometric-build-n{n}"), |b| {
            b.iter(|| {
                let net = topology::geometric(n, 4, 18);
                std::hint::black_box(net.graph().edge_count())
            })
        });
        let net = topology::geometric(n, 4, 18);
        c.bench_function(&format!("substrate/scale/landmark-build-n{n}"), |b| {
            b.iter(|| {
                let oracle = dtm_graph::LandmarkOracle::build(net.graph());
                std::hint::black_box(oracle.stretch_radius())
            })
        });
        // Warm the network's own oracle once, then measure query cost.
        let _ = net.distance(NodeId(0), NodeId(n - 1));
        c.bench_function(&format!("substrate/scale/landmark-distance-n{n}"), |b| {
            let stride = (n / 1024).max(1);
            b.iter(|| {
                let mut acc = 0u64;
                let mut u = 0u32;
                for v in (0..n).step_by(stride as usize) {
                    acc = acc.wrapping_add(net.distance(NodeId(u), NodeId(v)));
                    u = u.wrapping_add(stride * 7 + 1) % n;
                }
                std::hint::black_box(acc)
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dijkstra, bench_sparse_cover, bench_coloring, bench_list_scheduler, bench_lower_bound, bench_requesters_of, bench_engine_run, bench_scale
}
criterion_main!(benches);
