//! Criterion micro-benchmarks of the substrates: shortest paths, sparse
//! cover construction, weighted coloring, batch scheduling and lower
//! bounds. These dominate each simulated "time step" in practice.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_core::{smallest_valid_color, ColorConstraint};
use dtm_graph::{topology, NodeId, ShortestPathTree, SparseCover};
use dtm_model::{ObjectId, Transaction, TxnId};
use dtm_offline::{batch_lower_bound, BatchContext, BatchScheduler, ListScheduler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_dijkstra(c: &mut Criterion) {
    let net = topology::grid(&[32, 32]);
    c.bench_function("substrate/dijkstra/grid32x32", |b| {
        b.iter(|| {
            let t = ShortestPathTree::compute(net.graph(), NodeId(0));
            std::hint::black_box(t.eccentricity())
        })
    });
}

fn bench_sparse_cover(c: &mut Criterion) {
    let net = topology::line(64);
    c.bench_function("substrate/sparse-cover/line64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cover = SparseCover::build(&net, seed);
            std::hint::black_box(cover.num_layers())
        })
    });
}

fn bench_coloring(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let constraints: Vec<ColorConstraint> = (0..1000)
        .map(|_| ColorConstraint::new(rng.gen_range(0..5000), rng.gen_range(1..30)))
        .collect();
    c.bench_function("substrate/smallest-valid-color/1000-constraints", |b| {
        b.iter(|| std::hint::black_box(smallest_valid_color(&constraints)))
    });
}

fn batch_instance(n: u32, txns: usize, w: u32, k: usize, seed: u64) -> (Vec<Transaction>, BatchContext) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ctx = BatchContext::fresh(
        (0..w).map(|i| (ObjectId(i), NodeId(rng.gen_range(0..n)))),
    );
    let pending: Vec<Transaction> = (0..txns)
        .map(|i| {
            let set: Vec<ObjectId> = (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
            Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
        })
        .collect();
    (pending, ctx)
}

fn bench_list_scheduler(c: &mut Criterion) {
    let net = topology::grid(&[16, 16]);
    let (pending, ctx) = batch_instance(256, 200, 64, 3, 11);
    c.bench_function("substrate/list-scheduler/200-txns", |b| {
        b.iter(|| {
            let s = ListScheduler::fifo().schedule(&net, &pending, &ctx);
            std::hint::black_box(s.makespan_end())
        })
    });
}

fn bench_lower_bound(c: &mut Criterion) {
    let net = topology::grid(&[16, 16]);
    let (pending, ctx) = batch_instance(256, 200, 64, 3, 12);
    c.bench_function("substrate/lower-bound/200-txns", |b| {
        b.iter(|| std::hint::black_box(batch_lower_bound(&net, &pending, &ctx).combined()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dijkstra, bench_sparse_cover, bench_coloring, bench_list_scheduler, bench_lower_bound
}
criterion_main!(benches);
