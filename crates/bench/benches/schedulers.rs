//! Criterion micro-benchmarks: end-to-end scheduler runs on fixed
//! workloads. These measure the computational cost of the schedulers
//! themselves (the paper's model subsumes computation inside a time step;
//! these benches confirm the polynomial run times claimed in Sections III
//! and IV are practical).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::{ClosedLoopSource, WorkloadSpec};
use dtm_offline::{LineScheduler, ListScheduler};
use dtm_sim::{run_policy, EngineConfig};

fn no_events() -> EngineConfig {
    EngineConfig {
        record_events: false,
        ..EngineConfig::default()
    }
}

fn bench_greedy_clique(c: &mut Criterion) {
    let net = topology::clique(32);
    c.bench_function("run/greedy/clique32/closed-loop", |b| {
        b.iter_batched(
            || ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(32, 2), 2, 1),
            |src| {
                let res = run_policy(&net, src, GreedyPolicy::new(), no_events());
                assert!(res.ok());
                res.metrics.makespan
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_bucket_line(c: &mut Criterion) {
    let net = topology::line(64);
    c.bench_function("run/bucket-line/line64/closed-loop", |b| {
        b.iter_batched(
            || ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(16, 2), 1, 2),
            |src| {
                let res = run_policy(&net, src, BucketPolicy::new(LineScheduler), no_events());
                assert!(res.ok());
                res.metrics.makespan
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fifo_grid(c: &mut Criterion) {
    let net = topology::grid(&[6, 6]);
    c.bench_function("run/fifo/grid6x6/closed-loop", |b| {
        b.iter_batched(
            || ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(18, 2), 2, 3),
            |src| {
                let res = run_policy(&net, src, FifoPolicy::new(), no_events());
                assert!(res.ok());
                res.metrics.makespan
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_distributed_grid(c: &mut Criterion) {
    let net = topology::grid(&[4, 4]);
    c.bench_function("run/distributed-bucket/grid4x4/closed-loop", |b| {
        b.iter_batched(
            || {
                (
                    ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(8, 2), 1, 4),
                    DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 5),
                )
            },
            |(src, policy)| {
                let mut cfg = DistributedBucketPolicy::<ListScheduler>::engine_config();
                cfg.record_events = false;
                let res = run_policy(&net, src, policy, cfg);
                assert!(res.ok());
                res.metrics.makespan
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_greedy_clique, bench_bucket_line, bench_fifo_grid, bench_distributed_grid
}
criterion_main!(benches);
