//! Schema validation for the repository's append-only benchmark ledger
//! (`BENCH_substrate.json`, one JSON object per line).
//!
//! The ledger's comparison rule — numbers are only comparable *within*
//! one `run_context` (same container era, same machine state) — only
//! works if rows are uniquely keyed by `(bench, run_context)`: a second
//! row reusing the same key would silently pool measurements taken
//! under different conditions. This test pins that key discipline plus
//! the basic row shape, so appending a malformed or colliding row fails
//! CI instead of corrupting later comparisons.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn ledger_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_substrate.json")
}

#[test]
fn bench_rows_are_keyed_by_bench_and_run_context() {
    let raw = std::fs::read_to_string(ledger_path()).expect("BENCH_substrate.json readable");
    let mut keys: BTreeSet<(String, Option<String>)> = BTreeSet::new();
    for (lineno, line) in raw.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let row: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {n}: not JSON: {e}"));
        assert!(
            matches!(row, serde_json::Value::Object(_)),
            "line {n}: not an object"
        );

        // Required shape.
        let bench = row
            .get("bench")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("line {n}: missing string field `bench`"));
        let mean = row
            .get("mean_ns")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("line {n}: missing numeric field `mean_ns`"));
        assert!(mean > 0.0, "line {n}: non-positive mean_ns");
        let samples = row
            .get("samples")
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("line {n}: missing integer field `samples`"));
        assert!(samples >= 1, "line {n}: zero samples");

        // When the spread fields are present they must be ordered.
        if let (Some(min), Some(median), Some(max)) = (
            row.get("min_ns").and_then(|v| v.as_f64()),
            row.get("median_ns").and_then(|v| v.as_f64()),
            row.get("max_ns").and_then(|v| v.as_f64()),
        ) {
            assert!(
                min <= median && median <= max,
                "line {n}: min/median/max out of order"
            );
        }

        // Scale-ladder rows must say which decade they measured:
        // comparisons across PRs only make sense at equal `nodes`.
        if bench.starts_with("substrate/scale/") {
            let nodes = row
                .get("nodes")
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| {
                    panic!("line {n}: substrate/scale/ row missing integer field `nodes`")
                });
            assert!(nodes >= 1, "line {n}: non-positive nodes");
        }

        // The key discipline: one row per (bench, run_context). Rows
        // from before run_context existed key on (bench, None).
        let ctx = row.get("run_context").map(|v| {
            v.as_str()
                .unwrap_or_else(|| panic!("line {n}: run_context is not a string"))
                .to_owned()
        });
        let key = (bench.to_owned(), ctx);
        assert!(
            keys.insert(key.clone()),
            "line {n}: duplicate (bench, run_context) key {key:?} — \
             append under a new run_context (or bench suffix) instead of \
             pooling rows measured under different machine states"
        );
    }
    assert!(!keys.is_empty(), "ledger is empty");
}
