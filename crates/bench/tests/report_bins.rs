//! Regression tests for the report binaries' input handling: both
//! `trace_report` and `flight_report` must fail *gracefully* — an error
//! message on stderr and a nonzero exit, never a panic — on empty,
//! truncated, or malformed JSONL, and must render valid input.

use dtm_sim::{StepEffects, StepObserver};
use std::path::PathBuf;
use std::process::{Command, Output};

fn run_bin(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .expect("report binary spawns")
}

fn tmp_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtm-report-bins-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("fixture writable");
    path
}

/// The failure contract: exit code 2, a diagnostic on stderr, no panic.
fn assert_graceful(out: &Output, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{what}: expected exit 2, got {:?} (stderr: {stderr})",
        out.status.code()
    );
    assert!(!stderr.is_empty(), "{what}: no diagnostic on stderr");
    assert!(
        !stderr.contains("panicked"),
        "{what}: panicked instead of failing gracefully: {stderr}"
    );
}

#[test]
fn trace_report_fails_gracefully_on_bad_input() {
    let exe = env!("CARGO_BIN_EXE_trace_report");
    assert_graceful(&run_bin(exe, &[]), "no args");
    let empty = tmp_file("trace-empty.jsonl", "");
    assert_graceful(&run_bin(exe, &[empty.to_str().unwrap()]), "empty file");
    let blank = tmp_file("trace-blank.jsonl", "\n  \n");
    assert_graceful(&run_bin(exe, &[blank.to_str().unwrap()]), "whitespace file");
    let garbage = tmp_file("trace-garbage.jsonl", "not json at all\n");
    assert_graceful(&run_bin(exe, &[garbage.to_str().unwrap()]), "garbage");
    let truncated = tmp_file(
        "trace-truncated.jsonl",
        "{\"type\":\"meta\",\"data\":{\"pol",
    );
    assert_graceful(&run_bin(exe, &[truncated.to_str().unwrap()]), "truncated");
    assert_graceful(&run_bin(exe, &["/nonexistent/trace.jsonl"]), "missing file");
    let ok_but_bad_flag = tmp_file("trace-flag.jsonl", "{\"type\":\"meta\",\"data\":{}}\n");
    assert_graceful(
        &run_bin(exe, &[ok_but_bad_flag.to_str().unwrap(), "--top", "NaN"]),
        "non-integer --top",
    );
}

#[test]
fn flight_report_fails_gracefully_on_bad_input() {
    let exe = env!("CARGO_BIN_EXE_flight_report");
    assert_graceful(&run_bin(exe, &[]), "no args");
    let empty = tmp_file("flight-empty.jsonl", "");
    assert_graceful(&run_bin(exe, &[empty.to_str().unwrap()]), "empty file");
    let garbage = tmp_file("flight-garbage.jsonl", "not json at all\n");
    assert_graceful(&run_bin(exe, &[garbage.to_str().unwrap()]), "garbage");
    // A dump cut mid-line (what a killed process leaves behind).
    let truncated = tmp_file(
        "flight-truncated.jsonl",
        "{\"type\":\"flight_meta\",\"data\":{\"version\"",
    );
    assert_graceful(&run_bin(exe, &[truncated.to_str().unwrap()]), "truncated");
    // Valid JSON lines that violate the dump schema (no meta first).
    let no_meta = tmp_file(
        "flight-no-meta.jsonl",
        "{\"type\":\"flight_step\",\"data\":{\"t\":1}}\n",
    );
    assert_graceful(
        &run_bin(exe, &[no_meta.to_str().unwrap()]),
        "schema violation",
    );
    assert_graceful(
        &run_bin(exe, &["/nonexistent/run.flight.jsonl"]),
        "missing file",
    );
}

#[test]
fn flight_report_renders_a_real_dump() {
    // Produce a genuine dump through the recorder, then render it.
    let mut rec = dtm_telemetry::FlightRecorder::new(8);
    for t in 0..20u64 {
        let fx = StepEffects {
            t,
            live_after: (t % 5) as usize,
            ..StepEffects::default()
        };
        rec.on_step_end(&fx);
    }
    let dump = rec.dump();
    dtm_telemetry::validate_flight_dump(&dump).expect("dump validates");
    let path = tmp_file("flight-valid.jsonl", &dump);
    let exe = env!("CARGO_BIN_EXE_flight_report");
    let out = run_bin(exe, &[path.to_str().unwrap(), "--tail", "3"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ring capacity K : 8"), "{stdout}");
    assert!(stdout.contains("steps seen      : 20"), "{stdout}");
    assert!(stdout.contains("newest 3 step records"), "{stdout}");
    assert!(stdout.contains("health events   : none"), "{stdout}");
}
