//! Pins the two guarantees the parallel harness makes (EXPERIMENTS.md,
//! "Parallel execution"):
//!
//! 1. tables are byte-identical at any thread count — `--jobs N` may only
//!    change wall-clock, never output;
//! 2. sidecar filenames are a pure function of run identity, so a suite
//!    written twice (in parallel, with nondeterministic cell interleaving)
//!    produces exactly the same file listing.

use dtm_bench::{run_summary_with, ParallelGrid, WorkloadKind};
use dtm_core::{FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::WorkloadSpec;
use dtm_sim::EngineConfig;
use std::path::{Path, PathBuf};

/// Render every table of a representative experiment run to one string.
fn render(tables: &[dtm_bench::Table]) -> String {
    tables
        .iter()
        .map(|t| format!("{}\n{}", t.title, t.to_csv()))
        .collect::<Vec<_>>()
        .join("\n\n")
}

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    // E12 exercises the harness hardest: two grids, a `PolicyMk` fan-out,
    // and cells that can drop out (`Option` rows in the load sweep). E3 is
    // the simplest grid. Byte-equality on both pins the determinism claim.
    let serial = rayon::with_num_threads(1, || {
        let mut t = dtm_bench::experiments::e3_clique::run(true);
        t.extend(dtm_bench::experiments::e12_shootout::run(true));
        render(&t)
    });
    for jobs in [2, 4, 8] {
        let parallel = rayon::with_num_threads(jobs, || {
            let mut t = dtm_bench::experiments::e3_clique::run(true);
            t.extend(dtm_bench::experiments::e12_shootout::run(true));
            render(&t)
        });
        assert_eq!(
            serial, parallel,
            "experiment tables diverged at --jobs {jobs}"
        );
    }
}

/// A small suite with deliberately adversarial naming: two cells share
/// (policy, network) and differ only in seed, two differ only in workload
/// shape. Everything runs through the pool with sidecars on.
fn run_suite(dir: &Path) {
    let dir = PathBuf::from(dir);
    let mut grid = ParallelGrid::new("SUITE");
    for seed in [1u64, 2] {
        let dir = dir.clone();
        grid.cell(move || {
            let net = topology::clique(8);
            run_summary_with(
                &net,
                WorkloadKind::ClosedLoop {
                    spec: WorkloadSpec::batch_uniform(8, 2),
                    rounds: 1,
                    seed,
                },
                GreedyPolicy::new(),
                EngineConfig::default(),
                Some(dir),
            );
        });
    }
    for k in [1usize, 2] {
        let dir = dir.clone();
        grid.cell(move || {
            let net = topology::line(8);
            run_summary_with(
                &net,
                WorkloadKind::ClosedLoop {
                    spec: WorkloadSpec::batch_uniform(8, k),
                    rounds: 1,
                    seed: 7,
                },
                FifoPolicy::new(),
                EngineConfig::default(),
                Some(dir),
            );
        });
    }
    rayon::with_num_threads(4, || grid.run());
}

fn listing(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

#[test]
fn sidecar_filenames_are_deterministic_across_runs() {
    let base = std::env::temp_dir().join(format!("dtm-par-sidecars-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    for d in [&a, &b] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d).unwrap();
    }

    run_suite(&a);
    run_suite(&b);

    let (la, lb) = (listing(&a), listing(&b));
    assert_eq!(
        la, lb,
        "two runs of the same suite named sidecars differently"
    );
    // Four distinct runs → four distinct files: the identity must separate
    // same-(policy, network) cells that differ only in seed or workload.
    assert_eq!(la.len(), 4, "expected one sidecar per run: {la:?}");
    // Scope label from the grid, not a global sequence number.
    for name in &la {
        assert!(name.starts_with("suite-"), "unexpected sidecar name {name}");
    }

    let _ = std::fs::remove_dir_all(&base);
}
