//! Open-system streaming integration tests: a seeded Poisson stream can
//! run for 100k+ steps with bounded memory — the arena's slot high-water
//! mark stays pinned to the peak *live* set, per-transaction history maps
//! stay empty under [`Retention::Streaming`], and everything is
//! deterministic across repeat runs.
//!
//! Also property-tests [`TxnArena`] slot recycling directly: under
//! arbitrary insert/remove churn, slots never outgrow the peak number of
//! simultaneously live transactions.

use dtm_core::{FifoPolicy, GreedyPolicy};
use dtm_graph::{topology, NodeId};
use dtm_model::{ArrivalProcess, ObjectId, OpenLoopSource, Time, Transaction, TxnId, WorkloadSpec};
use dtm_sim::{Engine, EngineConfig, LiveTxn, Retention, RunStatus, TxnArena};
use dtm_telemetry::{steady_names, MetricsRegistry, SteadyStateProbe};
use proptest::prelude::*;
use std::sync::Arc;

fn streaming_config(warmup: Time, max_steps: Time) -> EngineConfig {
    EngineConfig {
        retention: Retention::Streaming { warmup },
        record_events: false,
        max_steps,
        ..EngineConfig::default()
    }
}

/// The acceptance-criteria run: 100k steps of seeded Poisson arrivals on
/// a clique, asserting the arena never allocates more slots than the
/// peak live set and the run stays open (never drains, never hits the
/// step limit early).
#[test]
fn poisson_stream_runs_100k_steps_with_bounded_arena() {
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.5 }, 42);
    let mut kernel = Engine::new(net, GreedyPolicy::new(), streaming_config(1_000, u64::MAX))
        .into_kernel(source);
    let ran = kernel.run_for(100_000);
    assert_eq!(ran, 100_000, "open run must not stop early");
    assert_eq!(kernel.status(), RunStatus::Open);
    assert!(!kernel.drained(), "a Poisson source is never exhausted");

    // Bounded memory: the free-list recycles slots, so the arena high
    // water is exactly the peak live set — independent of the ~50k
    // transactions that streamed through.
    let hwm = kernel.arena_high_water();
    assert_eq!(hwm, kernel.peak_live());
    assert!(
        hwm < 1_000,
        "arena high water {hwm} not O(backlog) after 100k steps"
    );
    assert!(kernel.commit_count() > 40_000, "throughput collapsed");

    // Steady-state latency histogram is populated past the warmup.
    let soj = kernel.sojourn_latency();
    assert!(soj.count() > 0);
    assert!(soj.percentile(0.50) <= soj.percentile(0.95));
}

/// Map-level companion of the arena high-water check: across 100k steps
/// of churn (with link capacity enabled so the edge-load map is live),
/// every kernel bookkeeping map stays bounded by the *current* system
/// shape — live set, object population, graph size — never by the ~50k
/// transactions that streamed through. Pins the invariants documented on
/// [`dtm_sim::KernelMapStats`].
#[test]
fn kernel_maps_stay_bounded_under_100k_step_churn() {
    let net = topology::clique(8);
    let nodes = net.n();
    let spec = WorkloadSpec::batch_uniform(8, 2); // 8 objects, k = 2
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.5 }, 42);
    let config = EngineConfig {
        link_capacity: Some(4),
        ..streaming_config(1_000, u64::MAX)
    };
    let mut kernel = Engine::new(net, GreedyPolicy::new(), config).into_kernel(source);
    for probe in 0..20 {
        kernel.run_for(5_000);
        let stats = kernel.map_stats();
        let live = kernel.live_count();
        assert!(
            stats.exec_queue <= live,
            "probe {probe}: exec queue {} > live {live}",
            stats.exec_queue
        );
        // Each scheduled transaction holds one requester entry per
        // object it uses (k = 2); entries leave on commit/abort.
        assert!(
            stats.requester_entries <= 2 * stats.exec_queue,
            "probe {probe}: {} requester entries for {} queued txns",
            stats.requester_entries,
            stats.exec_queue
        );
        // Dense per-object structures track the object population.
        assert_eq!(stats.requester_objects, 8);
        assert!(stats.in_transit <= 8);
        // Edge load counts in-flight objects only, and drops entries
        // that reach zero — never an unbounded residue.
        assert!(
            stats.edge_load_entries <= stats.in_transit,
            "probe {probe}: {} loaded edges > {} in-transit objects",
            stats.edge_load_entries,
            stats.in_transit
        );
        // Forwarding pointers are overwritten in place: objects x nodes.
        assert!(stats.forwarding_entries <= 8 * nodes);
    }
    assert!(kernel.commit_count() > 40_000, "throughput collapsed");
}

/// 50k-step kernel-level churn check on a line (slower topology, deeper
/// backlog): live-slot count tracks the backlog, with no monotonic slot
/// growth between probes taken every 5k steps.
#[test]
fn live_slot_count_tracks_backlog_not_throughput() {
    let net = topology::line(12);
    let spec = WorkloadSpec::batch_uniform(6, 2);
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.3 }, 7);
    let mut kernel =
        Engine::new(net, GreedyPolicy::new(), streaming_config(500, u64::MAX)).into_kernel(source);
    let mut probes = Vec::new();
    for _ in 0..10 {
        kernel.run_for(5_000);
        probes.push((kernel.arena_high_water(), kernel.commit_count()));
    }
    let (final_hwm, final_commits) = *probes.last().unwrap();
    assert!(final_commits > 10_000, "line should still commit steadily");
    assert!(
        final_hwm < 500,
        "slot high water {final_hwm} grew with throughput, not backlog"
    );
    // No monotonic growth: the high-water mark saturates once the
    // steady-state backlog has been reached (first probe window covers
    // the cold start).
    let early_hwm = probes[1].0;
    assert!(
        final_hwm <= early_hwm.saturating_mul(2),
        "slot high water kept climbing: {probes:?}"
    );
}

/// Same seed, same stream: two independent 20k-step streaming runs agree
/// on every observable.
#[test]
fn streaming_runs_are_deterministic() {
    let run = || {
        let net = topology::grid(&[3, 3]);
        let spec = WorkloadSpec::batch_uniform(6, 2);
        let source = OpenLoopSource::new(
            net.clone(),
            spec,
            ArrivalProcess::OnOff {
                rate: 1.0,
                on: 16,
                off: 48,
            },
            99,
        );
        let mut kernel = Engine::new(net, FifoPolicy::new(), streaming_config(1_000, u64::MAX))
            .into_kernel(source);
        kernel.run_for(20_000);
        (
            kernel.commit_count(),
            kernel.last_commit_at(),
            kernel.live_count(),
            kernel.arena_high_water(),
            kernel.sojourn_latency().count(),
            kernel.sojourn_latency().percentile(0.95),
        )
    };
    assert_eq!(run(), run());
}

/// Drained-vs-open semantics: a finite trace drains (status `Drained`);
/// the same engine config on an open source keeps reporting `Open`; an
/// open source truncated by `max_steps` reports `StepLimit`.
#[test]
fn run_status_distinguishes_drained_open_and_limit() {
    let net = topology::clique(4);
    let spec = WorkloadSpec::batch_uniform(4, 2);

    // Finite: a closed batch drains.
    let inst = dtm_model::WorkloadGenerator::new(spec.clone(), 5).generate(&net);
    let mut kernel = Engine::new(net.clone(), GreedyPolicy::new(), EngineConfig::default())
        .into_kernel(dtm_model::TraceSource::new(inst));
    while !kernel.done() {
        kernel.tick();
    }
    assert_eq!(kernel.status(), RunStatus::Drained);
    assert!(kernel.drained());

    // Open: never drains on its own.
    let source = OpenLoopSource::new(
        net.clone(),
        spec.clone(),
        ArrivalProcess::Poisson { rate: 0.2 },
        5,
    );
    let mut kernel = Engine::new(
        net.clone(),
        GreedyPolicy::new(),
        streaming_config(0, u64::MAX),
    )
    .into_kernel(source);
    kernel.run_for(200);
    assert_eq!(kernel.status(), RunStatus::Open);

    // Open + max_steps: the limit, not the source, ends the run.
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.2 }, 5);
    let mut kernel =
        Engine::new(net, GreedyPolicy::new(), streaming_config(0, 100)).into_kernel(source);
    while !kernel.done() {
        kernel.tick();
    }
    assert_eq!(kernel.status(), RunStatus::StepLimit);
    assert!(!kernel.drained());
}

/// The telemetry probe's live-set tracking agrees with the kernel across
/// an open run: backlog gauge == kernel live count at every probe point,
/// commit counter == kernel commit count at the end.
#[test]
fn steady_state_probe_tracks_kernel_backlog() {
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.6 }, 17);
    // Probe warmup 0: its commit counter must then agree exactly with
    // the kernel's (a nonzero warmup would skip cold-start generations).
    let registry = Arc::new(MetricsRegistry::new());
    let probe = SteadyStateProbe::new(Arc::clone(&registry), 0);
    let mut kernel = Engine::new(net, GreedyPolicy::new(), streaming_config(200, u64::MAX))
        .with_observer(probe)
        .into_kernel(source);
    for _ in 0..20 {
        kernel.run_for(500);
        let snapshot = registry.snapshot();
        let gauge = snapshot.gauges[steady_names::BACKLOG_NOW];
        assert_eq!(gauge as usize, kernel.live_count());
    }
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counters[steady_names::COMMITS],
        kernel.commit_count()
    );
}

fn txn(id: u64) -> LiveTxn {
    LiveTxn {
        txn: Transaction::new(TxnId(id), NodeId(0), [ObjectId((id % 4) as u32)], 0),
        scheduled: None,
    }
}

proptest! {
    /// Arena churn property: for any interleaving of inserts and removes,
    /// the slot high-water mark equals the peak number of simultaneously
    /// live transactions — removal really recycles slots, and generation
    /// counters keep recycled ids distinct.
    #[test]
    fn arena_slots_never_outgrow_peak_live(ops in proptest::collection::vec(0u16..1024, 1..400)) {
        let mut arena = TxnArena::new();
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        let mut peak = 0usize;
        for op in ops {
            // Odd byte = insert; even = remove the oldest live (if any).
            if op % 2 == 1 || live.is_empty() {
                arena.insert(txn(next_id));
                live.push(next_id);
                next_id += 1;
            } else {
                let id = live.remove((op as usize / 2) % live.len());
                let removed = arena.remove(TxnId(id));
                prop_assert!(removed.is_some());
            }
            peak = peak.max(arena.len());
            prop_assert_eq!(arena.len(), live.len());
        }
        prop_assert_eq!(arena.peak_live(), peak);
        prop_assert!(arena.slot_high_water() <= peak);
        // Every survivor is still reachable under its own id.
        for &id in &live {
            prop_assert!(arena.get(TxnId(id)).is_some());
        }
        // Compaction truncates past the highest live slot (interior
        // holes may remain) without losing survivors.
        arena.compact();
        prop_assert!(arena.slot_len() >= live.len());
        prop_assert!(arena.slot_len() <= peak);
        for &id in &live {
            prop_assert!(arena.get(TxnId(id)).is_some());
        }
    }
}
