//! Flight recorder + health watchdogs on real engine runs: O(K) memory
//! over long streams, deterministic event sequences under deliberate
//! overload, and schema-valid auto-dumps at failure onset.

use dtm_core::{FifoPolicy, GreedyPolicy};
use dtm_graph::topology;
use dtm_model::{ArrivalProcess, OpenLoopSource, WorkloadSpec};
use dtm_sim::{Engine, EngineConfig, Retention};
use dtm_telemetry::{
    flight_recorder, validate_flight_dump, HealthConfig, HealthEvent, HealthMonitor,
};
use parking_lot::Mutex;
use std::sync::Arc;

fn streaming_config(steps: u64, warmup: u64) -> EngineConfig {
    EngineConfig {
        retention: Retention::Streaming { warmup },
        record_events: false,
        max_steps: steps,
        ..EngineConfig::default()
    }
}

/// A 100k-step streaming run with K=256 leaves the recorder holding
/// exactly K records — the ring's memory is a function of K, not of run
/// length — while having seen every step.
#[test]
fn recorder_memory_is_bounded_by_k_over_100k_steps() {
    const STEPS: u64 = 100_000;
    const K: usize = 256;
    let net = topology::clique(8);
    let source = OpenLoopSource::new(
        net.clone(),
        WorkloadSpec::batch_uniform(8, 2),
        ArrivalProcess::Poisson { rate: 0.2 },
        7,
    );
    let recorder = flight_recorder(K);
    let mut kernel = Engine::new(
        net.clone(),
        GreedyPolicy::new(),
        streaming_config(STEPS, 1_000),
    )
    .with_observer(Arc::clone(&recorder))
    .into_kernel(source);
    kernel.run_for(STEPS);

    let rec = recorder.lock();
    assert_eq!(rec.steps_seen(), STEPS, "recorder saw every step");
    assert_eq!(rec.len(), K, "retains exactly K records");
    assert_eq!(rec.capacity(), K, "ring never grew past K");
    // The retained window is the *last* K steps, in order.
    let records: Vec<_> = rec.records().collect();
    assert_eq!(records.first().map(|r| r.t), Some(STEPS - K as u64));
    assert_eq!(records.last().map(|r| r.t), Some(STEPS - 1));
    assert!(records.windows(2).all(|w| w[1].t == w[0].t + 1));
    // And the dump of that window is schema-valid.
    let summary = validate_flight_dump(&rec.dump()).expect("dump validates");
    assert_eq!(summary.records, K);
    assert_eq!(summary.steps_seen, STEPS);
}

/// Drive fifo on a line into deliberate overload (adversarial arrivals
/// past the knee) with the monitor + recorder attached; returns the
/// events and the auto-dump contents.
fn overloaded_run(dump_path: &std::path::Path) -> (Vec<HealthEvent>, String) {
    const STEPS: u64 = 3_000;
    let net = topology::line(12);
    let source = OpenLoopSource::new(
        net.clone(),
        WorkloadSpec::batch_uniform(6, 2),
        ArrivalProcess::Adversarial { rate: 1.5 },
        1700,
    );
    // Timing sampling off: the sampled phase nanos are real wall-clock
    // measurements and the only nondeterministic field in a record —
    // with them disabled the whole dump must be byte-identical across
    // reruns. (Counts, gauges and events are deterministic regardless.)
    let recorder = Arc::new(Mutex::new(
        dtm_telemetry::FlightRecorder::new(128).with_timing_sample(0),
    ));
    let monitor = Arc::new(Mutex::new(
        HealthMonitor::new(HealthConfig::default())
            .with_auto_dump(Arc::clone(&recorder), dump_path.to_path_buf()),
    ));
    let mut kernel = Engine::new(net.clone(), FifoPolicy::new(), streaming_config(STEPS, 500))
        .with_observer(Arc::clone(&recorder))
        .with_observer(Arc::clone(&monitor))
        .into_kernel(source);
    // Feed the arena probe the way the streaming harness does.
    while kernel.now() < STEPS {
        if kernel.tick().is_none() {
            break;
        }
        if kernel.now().is_multiple_of(256) {
            let v = kernel.vitals();
            monitor
                .lock()
                .probe_arena(v.now, v.arena_high_water, v.peak_live);
        }
    }
    let events = monitor.lock().events().to_vec();
    let dump = std::fs::read_to_string(dump_path).expect("auto-dump written at first event");
    (events, dump)
}

/// A deliberately overloaded run must produce a deterministic
/// `HealthEvent` sequence — the same events, at the same steps, across
/// repeated runs — and the auto-dump written at the first event must
/// validate against the dump schema.
#[test]
fn forced_overload_fires_deterministic_events_and_valid_dump() {
    let dir = std::env::temp_dir().join(format!("dtm-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_a = dir.join("overload-a.flight.jsonl");
    let path_b = dir.join("overload-b.flight.jsonl");
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);

    let (events_a, dump_a) = overloaded_run(&path_a);
    assert!(
        events_a.iter().any(|e| e.kind.tag() == "overload"),
        "adversarial ρ=1.5 on line(12)/fifo must trip the overload alarm; got {events_a:?}"
    );
    // The arena invariant must NOT have fired — recycling holds even
    // under overload.
    assert!(
        events_a.iter().all(|e| e.kind.tag() != "arena-drift"),
        "arena drift under overload: {events_a:?}"
    );

    // Determinism: byte-identical event stream and auto-dump on rerun.
    let (events_b, dump_b) = overloaded_run(&path_b);
    assert_eq!(events_a, events_b, "health events must be deterministic");
    assert_eq!(dump_a, dump_b, "auto-dump must be byte-identical");

    // The onset dump validates and carries the triggering event.
    let summary = validate_flight_dump(&dump_a).expect("auto-dump schema-valid");
    assert!(summary.health_events >= 1, "dump carries the first event");
    assert!(summary.records > 0);
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

/// Sustained starvation under overload also surfaces per-transaction
/// events, each transaction at most once, oldest first.
#[test]
fn overload_starves_oldest_transactions_first() {
    let dir = std::env::temp_dir().join(format!("dtm-flight-starve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("starve.flight.jsonl");
    let _ = std::fs::remove_file(&path);
    let (events, _) = overloaded_run(&path);
    let starved: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            dtm_telemetry::HealthEventKind::Starvation { txn, arrived, .. } => Some((txn, arrived)),
            _ => None,
        })
        .collect();
    assert!(
        !starved.is_empty(),
        "a 3000-step overload must starve transactions past age 1024; got {events:?}"
    );
    // Reported in age order and never twice.
    assert!(starved.windows(2).all(|w| w[0].1 <= w[1].1), "{starved:?}");
    let mut txns: Vec<_> = starved.iter().map(|s| s.0).collect();
    txns.sort();
    txns.dedup();
    assert_eq!(txns.len(), starved.len(), "no txn reported twice");
    let _ = std::fs::remove_file(&path);
}
