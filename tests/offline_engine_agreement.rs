//! Cross-check between the offline feasibility validator and the engine:
//! any batch schedule that `validate_batch_schedule` accepts must execute
//! on the engine without violations, for every batch scheduler on random
//! workloads. This ties the offline substrate's notion of feasibility to
//! the actual data-flow semantics.

use dtm_graph::{topology, Network, NodeId};
use dtm_model::{Instance, ObjectId, ObjectInfo, TraceSource, Transaction, TxnId};
use dtm_offline::{
    validate_batch_schedule, BatchContext, BatchScheduler, CliqueScheduler, ClusterScheduler,
    LineScheduler, ListScheduler, StarScheduler, TspScheduler,
};
use dtm_sim::{run_policy, validate_events, EngineConfig, FixedSchedulePolicy, ValidationConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Build a random batch instance on `net`.
fn random_batch(net: &Network, w: u32, k: usize, seed: u64) -> Instance {
    let n = net.n() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let objects: Vec<ObjectInfo> = (0..w)
        .map(|i| ObjectInfo {
            id: ObjectId(i),
            origin: NodeId(rng.gen_range(0..n)),
            created_at: 0,
        })
        .collect();
    let txns: Vec<Transaction> = (0..n.min(14))
        .map(|i| {
            let set: Vec<ObjectId> = (0..k).map(|_| ObjectId(rng.gen_range(0..w))).collect();
            Transaction::new(TxnId(i as u64), NodeId(rng.gen_range(0..n)), set, 0)
        })
        .collect();
    Instance::new(objects, txns)
}

/// Schedule `inst` with `scheduler`, check the offline validator accepts,
/// then run the schedule on the engine and check it executes cleanly.
fn agree<S: BatchScheduler>(net: &Network, mut scheduler: S, inst: Instance) {
    let ctx = BatchContext::fresh(inst.objects.iter().map(|o| (o.id, o.origin)));
    let schedule = scheduler.schedule(net, &inst.txns, &ctx);
    validate_batch_schedule(net, &inst.txns, &ctx, &schedule)
        .unwrap_or_else(|e| panic!("{} offline-invalid: {e}", scheduler.name()));
    let res = run_policy(
        net,
        TraceSource::new(inst),
        FixedSchedulePolicy::new(schedule),
        EngineConfig::default(),
    );
    assert!(
        res.ok(),
        "{}: engine violations {:?}",
        scheduler.name(),
        res.violations
    );
    validate_events(net, &res, &ValidationConfig::default()).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn list_schedules_execute(seed in 0u64..500, w in 1u32..6, k in 1usize..4) {
        let net = topology::grid(&[4, 4]);
        agree(&net, ListScheduler::fifo(), random_batch(&net, w, k, seed));
    }

    #[test]
    fn clique_schedules_execute(seed in 0u64..500, w in 1u32..6, k in 1usize..4) {
        let net = topology::clique(10);
        agree(&net, CliqueScheduler, random_batch(&net, w, k, seed));
    }

    #[test]
    fn line_schedules_execute(seed in 0u64..500, w in 1u32..6, k in 1usize..4) {
        let net = topology::line(18);
        agree(&net, LineScheduler, random_batch(&net, w, k, seed));
    }

    #[test]
    fn cluster_schedules_execute(seed in 0u64..300, w in 1u32..6, k in 1usize..4) {
        let net = topology::cluster(3, 4, 5);
        agree(&net, ClusterScheduler::default(), random_batch(&net, w, k, seed));
    }

    #[test]
    fn star_schedules_execute(seed in 0u64..300, w in 1u32..6, k in 1usize..4) {
        let net = topology::star(3, 4);
        agree(&net, StarScheduler::default(), random_batch(&net, w, k, seed));
    }

    #[test]
    fn tsp_schedules_execute(seed in 0u64..300, w in 1u32..6, k in 1usize..4) {
        let net = topology::random(16, 3, 3, 9);
        agree(&net, TspScheduler, random_batch(&net, w, k, seed));
    }
}
