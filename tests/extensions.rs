//! Integration tests for the library extensions beyond the paper's core
//! algorithms: application-benchmark presets, adaptive policies, the
//! message-level distributed protocol, congestion analysis and timeline
//! rendering — all exercised together through the public API.

use dtm_core::{AutoPolicy, DistributedMsgPolicy, GreedyPolicy, MsgStats, RandomizedBackoffPolicy};
use dtm_graph::topology;
use dtm_model::{presets, TraceSource, WorkloadGenerator};
use dtm_offline::ListScheduler;
use dtm_sim::{
    edge_congestion, peak_congestion, render_timeline, run_policy, validate_events, EngineConfig,
    TimelineOptions, ValidationConfig,
};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn bank_benchmark_under_all_extension_policies() {
    let net = topology::clique(12);
    let inst = WorkloadGenerator::new(presets::bank(36, 0.2, 20), 1).generate(&net);
    let n = inst.num_txns();
    assert!(n > 0);
    for policy in [
        Box::new(GreedyPolicy::new()) as Box<dyn dtm_sim::SchedulingPolicy>,
        Box::new(RandomizedBackoffPolicy::new(7)),
        Box::new(AutoPolicy::for_network(&net)),
    ] {
        let res = run_policy(
            &net,
            TraceSource::new(inst.clone()),
            policy,
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, n);
    }
}

#[test]
fn social_graph_congestion_analysis() {
    let net = topology::grid(&[5, 5]);
    let inst = WorkloadGenerator::new(presets::social_graph(50, 2, 0.2, 20), 2).generate(&net);
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    res.expect_ok();
    // The hotspot workload funnels the celebrity objects over few edges:
    // there must be measurable congestion somewhere.
    let peak = peak_congestion(&res);
    assert!(peak >= 1);
    let per_edge = edge_congestion(&res);
    assert_eq!(per_edge.values().copied().max().unwrap_or(0), peak);
    // Hops recorded in metrics must equal departures in the log.
    let departures = res
        .events
        .iter()
        .filter(|e| matches!(e, dtm_sim::Event::Departed { .. }))
        .count() as u64;
    assert_eq!(departures, res.metrics.hops);
}

#[test]
fn inventory_benchmark_message_level_protocol() {
    let net = topology::grid(&[4, 4]);
    let inst = WorkloadGenerator::new(presets::inventory(32, 2, 0.15, 16), 3).generate(&net);
    let n = inst.num_txns();
    let stats = Arc::new(Mutex::new(MsgStats::default()));
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        DistributedMsgPolicy::new(&net, ListScheduler::fifo(), 9).with_stats(Arc::clone(&stats)),
        DistributedMsgPolicy::<ListScheduler>::engine_config(),
    );
    res.expect_ok();
    validate_events(
        &net,
        &res,
        &ValidationConfig {
            speed_divisor: 2,
            allow_late_execution: true,
            ..ValidationConfig::default()
        },
    )
    .unwrap();
    assert_eq!(res.metrics.committed, n);
    assert!(stats.lock().messages > 0 || n == 0);
}

#[test]
fn timeline_renders_for_real_run() {
    let net = topology::line(8);
    let inst = WorkloadGenerator::new(presets::bank(8, 0.2, 10), 4).generate(&net);
    if inst.txns.is_empty() {
        return;
    }
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    res.expect_ok();
    let text = render_timeline(&res, &TimelineOptions::default());
    assert!(text.starts_with("timeline"));
    // Every commit appears as a '*' mark (one per committed object use).
    let object_uses: usize = res.txns.values().map(|t| t.k()).sum();
    assert!(text.matches('*').count() <= object_uses);
    assert!(text.matches('*').count() >= res.metrics.committed.min(1));
}

#[test]
fn workload_stats_match_run_contention() {
    // l_max of the instance lower-bounds the hottest object's commit chain.
    let net = topology::clique(10);
    let inst = WorkloadGenerator::new(presets::social_graph(20, 1, 0.3, 12), 5).generate(&net);
    if inst.txns.is_empty() {
        return;
    }
    let stats = inst.stats();
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    res.expect_ok();
    // The makespan can never beat the serialization of the hottest object
    // minus its arrival spread (conservative: l_max commits need l_max - 1
    // distinct steps *after the last arrival window*; just check >= a weak
    // floor to tie stats to execution).
    assert!(res.metrics.makespan as usize + 1 >= stats.l_max.saturating_sub(12));
    assert!(stats.popularity_gini > 0.0);
}
