//! Shared scaffolding for the `dtm-integration` test package.
//!
//! The integration tests live as flat files in the package root (declared
//! as `[[test]]` targets in `Cargo.toml`); this library crate exists only
//! to anchor the package and hosts small shared helpers.

use dtm_graph::{topology, Network};
use dtm_sim::RunResult;
use std::fmt::Write as _;

/// The standard small-topology zoo used across integration tests.
pub fn small_topologies() -> Vec<Network> {
    vec![
        topology::clique(10),
        topology::line(16),
        topology::grid(&[4, 4]),
        topology::star(3, 4),
        topology::cluster(3, 3, 4),
    ]
}

/// FNV-1a over a string; stable across platforms and sessions.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical, line-oriented rendering of everything a refactor must
/// preserve about a [`RunResult`]: the schedule, commits, metrics,
/// latency summary, and an FNV-1a hash of the full event log. Shared by
/// the golden-trace snapshots and the checkpoint/resume byte-identity
/// tests.
pub fn render(result: &RunResult) -> String {
    let mut out = String::new();
    writeln!(out, "policy: {}", result.policy).unwrap();
    writeln!(out, "violations: {}", result.violations.len()).unwrap();
    writeln!(out, "schedule:").unwrap();
    for (txn, time) in result.schedule.iter() {
        writeln!(out, "  {txn} -> {time}").unwrap();
    }
    writeln!(out, "commits:").unwrap();
    for (txn, time) in &result.commits {
        writeln!(out, "  {txn} @ {time}").unwrap();
    }
    let m = &result.metrics;
    writeln!(
        out,
        "metrics: makespan={} committed={} comm_cost={} hops={} peak_live={} steps={}",
        m.makespan, m.committed, m.comm_cost, m.hops, m.peak_live, m.steps
    )
    .unwrap();
    writeln!(
        out,
        "latency: count={} mean={:.6} p50={} p95={} max={}",
        m.latency.count, m.latency.mean, m.latency.p50, m.latency.p95, m.latency.max
    )
    .unwrap();
    let events_text: String = result.events.iter().map(|e| format!("{e:?}\n")).collect();
    writeln!(
        out,
        "events: n={} fnv64={:016x}",
        result.events.len(),
        fnv64(&events_text)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn zoo_is_connected() {
        for net in super::small_topologies() {
            assert!(net.graph().is_connected(), "{}", net.name());
        }
    }
}
