//! Shared scaffolding for the `dtm-integration` test package.
//!
//! The integration tests live as flat files in the package root (declared
//! as `[[test]]` targets in `Cargo.toml`); this library crate exists only
//! to anchor the package and hosts small shared helpers.

use dtm_graph::{topology, Network};

/// The standard small-topology zoo used across integration tests.
pub fn small_topologies() -> Vec<Network> {
    vec![
        topology::clique(10),
        topology::line(16),
        topology::grid(&[4, 4]),
        topology::star(3, 4),
        topology::cluster(3, 3, 4),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn zoo_is_connected() {
        for net in super::small_topologies() {
            assert!(net.graph().is_connected(), "{}", net.name());
        }
    }
}
