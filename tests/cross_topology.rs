//! The full scheduler x topology matrix: every policy must produce clean,
//! validated, complete executions on every architecture the paper names
//! (and a few extras).

use dtm_core::{BucketPolicy, CentralizedWrapper, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network, NodeId};
use dtm_model::{ClosedLoopSource, WorkloadSpec};
use dtm_offline::{ClusterScheduler, LineScheduler, ListScheduler, StarScheduler};
use dtm_sim::{run_policy, validate_events, EngineConfig, SchedulingPolicy, ValidationConfig};

fn topologies() -> Vec<Network> {
    vec![
        topology::clique(10),
        topology::line(16),
        topology::ring(12),
        topology::grid(&[4, 4]),
        topology::hypercube(4),
        topology::butterfly(2),
        topology::star(3, 4),
        topology::cluster(3, 3, 4),
        topology::torus(&[4, 4]),
        topology::tree(3),
        topology::random(16, 3, 3, 5),
    ]
}

fn run_matrix(make_policy: &dyn Fn(&Network) -> Box<dyn SchedulingPolicy>) {
    for net in topologies() {
        let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
        let src = ClosedLoopSource::new(net.clone(), spec, 2, 21);
        let expected = src.total_txns();
        let res = run_policy(&net, src, make_policy(&net), EngineConfig::default());
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        assert_eq!(res.metrics.committed, expected, "{}", net.name());
    }
}

#[test]
fn greedy_on_all_topologies() {
    run_matrix(&|_| Box::new(GreedyPolicy::new()));
}

#[test]
fn bucket_with_topology_substrate_on_all_topologies() {
    run_matrix(&|net| {
        use dtm_graph::Structured;
        match net.structured() {
            Some(Structured::Line { .. }) => Box::new(BucketPolicy::new(LineScheduler)),
            Some(Structured::Cluster { .. }) => {
                Box::new(BucketPolicy::new(ClusterScheduler::default()))
            }
            Some(Structured::Star { .. }) => Box::new(BucketPolicy::new(StarScheduler::default())),
            _ => Box::new(BucketPolicy::new(ListScheduler::fifo())),
        }
    });
}

#[test]
fn fifo_on_all_topologies() {
    run_matrix(&|_| Box::new(FifoPolicy::new()));
}

#[test]
fn tsp_on_all_topologies() {
    run_matrix(&|_| Box::new(TspPolicy::new()));
}

#[test]
fn centralized_greedy_on_all_topologies() {
    run_matrix(&|_| Box::new(CentralizedWrapper::new(GreedyPolicy::new(), NodeId(0))));
}

/// Weighted random graphs exercise non-unit edge weights end to end.
#[test]
fn weighted_random_graphs() {
    for seed in 0..4u64 {
        let net = topology::random(20, 4, 5, seed);
        let spec = WorkloadSpec::batch_uniform(8, 2);
        let src = ClosedLoopSource::new(net.clone(), spec, 2, seed);
        let expected = src.total_txns();
        let res = run_policy(&net, src, GreedyPolicy::new(), EngineConfig::default());
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, expected);
    }
}

/// k = 1 (single object per transaction, the classic DTM setting of
/// Herlihy & Sun) and large k both work.
#[test]
fn extreme_k_values() {
    let net = topology::grid(&[4, 4]);
    for k in [1usize, 6] {
        let spec = WorkloadSpec::batch_uniform(8, k);
        let src = ClosedLoopSource::new(net.clone(), spec, 2, 3);
        let expected = src.total_txns();
        let res = run_policy(&net, src, GreedyPolicy::new(), EngineConfig::default());
        res.expect_ok();
        assert_eq!(res.metrics.committed, expected);
    }
}
