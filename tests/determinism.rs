//! Determinism: identical seeds produce bit-identical schedules and
//! executions for every scheduler (a requirement for reproducible
//! experiments), and different seeds actually vary the workload.

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy};
use dtm_graph::{topology, SparseCover};
use dtm_model::{ClosedLoopSource, WorkloadSpec};
use dtm_offline::{ListScheduler, StarScheduler};
use dtm_sim::{run_policy, EngineConfig, RunResult};

fn run_greedy(seed: u64) -> RunResult {
    let net = topology::grid(&[4, 4]);
    let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, seed);
    run_policy(&net, src, GreedyPolicy::new(), EngineConfig::default())
}

#[test]
fn greedy_is_deterministic() {
    let a = run_greedy(5);
    let b = run_greedy(5);
    a.expect_ok();
    b.expect_ok();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.metrics.comm_cost, b.metrics.comm_cost);
    assert_eq!(a.events.len(), b.events.len());
}

#[test]
fn different_seeds_differ() {
    let a = run_greedy(5);
    let b = run_greedy(6);
    assert_ne!(a.schedule, b.schedule);
}

#[test]
fn bucket_is_deterministic() {
    let net = topology::line(16);
    let mk = || {
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, 9);
        run_policy(
            &net,
            src,
            BucketPolicy::new(ListScheduler::fifo()),
            EngineConfig::default(),
        )
    };
    let (a, b) = (mk(), mk());
    a.expect_ok();
    b.expect_ok();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.commits, b.commits);
}

#[test]
fn randomized_batch_scheduler_is_seeded() {
    // StarScheduler draws random restarts, but from a fixed seed: two
    // bucket runs around it must agree exactly.
    let net = topology::star(3, 4);
    let mk = || {
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, 2);
        run_policy(
            &net,
            src,
            BucketPolicy::new(StarScheduler::default()),
            EngineConfig::default(),
        )
    };
    let (a, b) = (mk(), mk());
    a.expect_ok();
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn fifo_is_deterministic() {
    let net = topology::clique(8);
    let mk = || {
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 2, 7);
        run_policy(&net, src, FifoPolicy::new(), EngineConfig::default())
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn distributed_bucket_is_deterministic() {
    let net = topology::grid(&[4, 4]);
    let mk = || {
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(6, 2), 1, 3);
        run_policy(
            &net,
            src,
            DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 11),
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        )
    };
    let (a, b) = (mk(), mk());
    a.expect_ok();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.commits, b.commits);
}

#[test]
fn sparse_cover_is_seed_deterministic() {
    let net = topology::grid(&[5, 5]);
    let a = SparseCover::build(&net, 1234);
    let b = SparseCover::build(&net, 1234);
    assert_eq!(a.num_layers(), b.num_layers());
    assert_eq!(a.clusters().len(), b.clusters().len());
    for (x, y) in a.clusters().iter().zip(b.clusters()) {
        assert_eq!(x.leader, y.leader);
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.height, y.height);
    }
}
