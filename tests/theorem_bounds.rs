//! Theorem-level assertions at integration scale: every bound the paper
//! proves must hold on every run this suite performs.

use dtm_core::{BucketPolicy, BucketStats, GreedyPolicy, GreedyStats};
use dtm_graph::topology;
use dtm_model::{
    ClosedLoopSource, FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec,
};
use dtm_offline::{competitive_ratio, LineScheduler, ListScheduler};
use dtm_sim::{run_policy, EngineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Theorem 1: color <= 2Γ' - Δ' on every topology and seed tested.
#[test]
fn theorem1_bound_many_topologies() {
    let nets = vec![
        topology::clique(12),
        topology::line(20),
        topology::grid(&[4, 5]),
        topology::hypercube(4),
        topology::star(3, 5),
        topology::cluster(3, 3, 4),
        topology::random(20, 3, 4, 3),
    ];
    for net in &nets {
        for seed in 0..3u64 {
            let stats = Arc::new(Mutex::new(GreedyStats::default()));
            let spec = WorkloadSpec {
                num_objects: 8,
                k: 3,
                object_choice: ObjectChoice::Uniform,
                arrival: FiniteArrivals::Bernoulli {
                    rate: 0.25,
                    horizon: 15,
                },
            };
            let inst = WorkloadGenerator::new(spec, seed).generate(net);
            let res = run_policy(
                net,
                TraceSource::new(inst),
                GreedyPolicy::new().with_stats(Arc::clone(&stats)),
                EngineConfig::default(),
            );
            res.expect_ok();
            for &(id, color, bound) in &stats.lock().assigned {
                assert!(
                    color <= bound,
                    "{}: {id} color {color} > Theorem 1 bound {bound}",
                    net.name()
                );
            }
        }
    }
}

/// Theorem 2: uniform-mode colors respect the slot bound and absolute
/// execution times are multiples of beta.
#[test]
fn theorem2_uniform_bound() {
    for (net, beta) in [
        (topology::clique(10), 1u64),
        (topology::hypercube(3), 3),
        (topology::hypercube(4), 4),
    ] {
        let stats = Arc::new(Mutex::new(GreedyStats::default()));
        let spec = WorkloadSpec {
            num_objects: 6,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.3,
                horizon: 12,
            },
        };
        let inst = WorkloadGenerator::new(spec, 5).generate(&net);
        let res = run_policy(
            &net,
            TraceSource::new(inst),
            GreedyPolicy::uniform(beta).with_stats(Arc::clone(&stats)),
            EngineConfig::default(),
        );
        res.expect_ok();
        for &(id, color, bound) in &stats.lock().assigned {
            assert!(color >= 1);
            assert!(color <= bound, "{id}: {color} > {bound}");
        }
        // Absolute execution times are multiples of beta.
        for (txn, exec) in res.schedule.iter() {
            assert_eq!(exec % beta, 0, "{txn} executes off the beta grid");
        }
    }
}

/// Lemma 3 (levels) and Lemma 4 (deadlines) for the bucket schedule.
#[test]
fn bucket_lemmas_on_line_and_grid() {
    for (net, line) in [(topology::line(32), true), (topology::grid(&[5, 5]), false)] {
        let stats = Arc::new(Mutex::new(BucketStats::default()));
        let spec = WorkloadSpec {
            num_objects: 8,
            k: 2,
            object_choice: ObjectChoice::Uniform,
            arrival: FiniteArrivals::Bernoulli {
                rate: 0.25,
                horizon: 25,
            },
        };
        let inst = WorkloadGenerator::new(spec, 9).generate(&net);
        let res = if line {
            run_policy(
                &net,
                TraceSource::new(inst),
                BucketPolicy::new(LineScheduler).with_stats(Arc::clone(&stats)),
                EngineConfig::default(),
            )
        } else {
            run_policy(
                &net,
                TraceSource::new(inst),
                BucketPolicy::new(ListScheduler::fifo()).with_stats(Arc::clone(&stats)),
                EngineConfig::default(),
            )
        };
        res.expect_ok();
        let s = stats.lock();
        assert_eq!(s.overflows, 0);
        let lemma3 = net.max_bucket_level();
        for (&id, &lvl) in &s.levels {
            assert!(lvl <= lemma3, "{id} level {lvl} > {lemma3}");
            let inserted = s.inserted_at[&id];
            let deadline = inserted + (lvl as u64 + 1) * (1u64 << (lvl + 2));
            assert!(
                res.commits[&id] <= deadline,
                "{id} missed Lemma 4 deadline on {}",
                net.name()
            );
        }
    }
}

/// Theorem 3 shape: on cliques the measured ratio grows with k but not
/// with n.
#[test]
fn theorem3_ratio_shape() {
    let ratio_for = |n: u32, k: usize| -> f64 {
        let net = topology::clique(n);
        let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(n, k), 2, 77);
        let res = run_policy(&net, src, GreedyPolicy::uniform(1), EngineConfig::default());
        res.expect_ok();
        competitive_ratio(&net, &res).max_ratio
    };
    let r_small_k = ratio_for(16, 1);
    let r_big_k = ratio_for(16, 8);
    assert!(
        r_big_k >= r_small_k,
        "ratio should not shrink with k: {r_small_k} vs {r_big_k}"
    );
    // Flat in n (allow generous noise: conservative lower bounds wobble).
    let r_n16 = ratio_for(16, 4);
    let r_n64 = ratio_for(64, 4);
    assert!(
        r_n64 <= r_n16 * 3.0 + 3.0,
        "ratio should not scale with n: {r_n16} -> {r_n64}"
    );
}

/// The conservative ratio estimate is always >= 1 for nontrivial runs
/// (the optimum can never beat the lower bound).
#[test]
fn ratio_at_least_one_under_contention() {
    let net = topology::line(16);
    let src = ClosedLoopSource::new(net.clone(), WorkloadSpec::batch_uniform(4, 2), 2, 13);
    let res = run_policy(&net, src, GreedyPolicy::new(), EngineConfig::default());
    res.expect_ok();
    let r = competitive_ratio(&net, &res);
    assert!(r.max_ratio >= 1.0, "got {}", r.max_ratio);
}
