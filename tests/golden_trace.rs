//! Golden-trace regression tests: every online policy runs a fixed
//! seeded workload and its **full** commit schedule, metrics, and event
//! log must match a checked-in snapshot.
//!
//! The snapshots under `tests/golden/` were generated from the engine
//! *before* the arena/index refactor of the runtime spine; these tests
//! pin the refactor to bit-identical behavior. Regenerate deliberately
//! with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p dtm-integration --test golden_trace
//! ```

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_integration::render;
use dtm_model::{FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::{run_policy, EngineConfig, SchedulingPolicy};
use std::path::PathBuf;

/// The fixed scenario: 4x4 grid, 8 objects, k=2 accesses, Bernoulli
/// arrivals over 40 steps, generator seed 2024.
fn scenario() -> (Network, dtm_model::Instance) {
    let net = topology::grid(&[4, 4]);
    let spec = WorkloadSpec {
        num_objects: 8,
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.25,
            horizon: 40,
        },
    };
    let inst = WorkloadGenerator::new(spec, 2024).generate(&net);
    inst.validate(&net).expect("scenario instance is valid");
    (net, inst)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, policy: Box<dyn SchedulingPolicy>, config: EngineConfig) {
    let (net, inst) = scenario();
    let n = inst.num_txns();
    let res = run_policy(&net, TraceSource::new(inst), policy, config);
    res.expect_ok();
    assert_eq!(res.metrics.committed, n, "{name}: lost transactions");
    let rendered = render(&res);
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with BLESS_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "{name}: run diverged from the pre-refactor golden snapshot"
    );
}

#[test]
fn golden_greedy() {
    check_golden(
        "greedy",
        Box::new(GreedyPolicy::new()),
        EngineConfig::default(),
    );
}

#[test]
fn golden_bucket() {
    check_golden(
        "bucket",
        Box::new(BucketPolicy::new(ListScheduler::fifo())),
        EngineConfig::default(),
    );
}

#[test]
fn golden_distributed_bucket() {
    let (net, _) = scenario();
    check_golden(
        "distributed_bucket",
        Box::new(DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 7)),
        DistributedBucketPolicy::<ListScheduler>::engine_config(),
    );
}

#[test]
fn golden_fifo() {
    check_golden("fifo", Box::new(FifoPolicy::new()), EngineConfig::default());
}

#[test]
fn golden_tsp() {
    check_golden("tsp", Box::new(TspPolicy::new()), EngineConfig::default());
}
