//! Steady-state allocation discipline: once the kernel's scratch buffers
//! have warmed up, a tick with no arrivals and no live transactions must
//! perform **zero** heap allocations — the open-system loop can idle
//! indefinitely without touching the allocator.
//!
//! Uses a counting wrapper around the system allocator. This is a
//! separate integration-test binary so the `unsafe` allocator shim stays
//! out of every library crate (which all `#![forbid(unsafe_code)]`).

use dtm_core::GreedyPolicy;
use dtm_graph::topology;
use dtm_model::{ArrivalProcess, OpenLoopSource, WorkloadSpec};
use dtm_sim::{Engine, EngineConfig, Retention};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Drive a bursty stream through its on-window, let the live set drain
/// during the long off-window, then assert the remaining idle ticks are
/// allocation-free.
#[test]
fn empty_arrival_steady_ticks_do_not_allocate() {
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    // 50 busy steps, then 10_000 idle ones: plenty of drain room.
    let source = OpenLoopSource::new(
        net.clone(),
        spec,
        ArrivalProcess::OnOff {
            rate: 2.0,
            on: 50,
            off: 10_000,
        },
        11,
    );
    let config = EngineConfig {
        retention: Retention::Streaming { warmup: 0 },
        record_events: false,
        max_steps: u64::MAX,
        ..EngineConfig::default()
    };
    let mut kernel = Engine::new(net, GreedyPolicy::new(), config).into_kernel(source);

    // Warm up: run through the burst and give the backlog time to drain.
    // This sizes every scratch buffer the kernel reuses.
    kernel.run_for(2_000);
    assert_eq!(
        kernel.live_count(),
        0,
        "burst did not drain; idle-tick premise broken"
    );
    assert!(kernel.commit_count() > 0, "burst produced no work");

    // Idle steady state: no arrivals, no live transactions. Every tick
    // must leave the allocation counter untouched.
    for step in 0..1_000u64 {
        let before = allocations();
        kernel.tick();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "idle tick {step} (t={}) allocated",
            kernel.now()
        );
        assert_eq!(kernel.live_count(), 0);
    }
}

/// The continuous-observability stack must not break the idle-tick
/// guarantee: with a flight recorder (K=256) and the health watchdogs
/// attached, a warmed-up tick with no arrivals and no live transactions
/// still performs zero heap allocations — the recorder overwrites its
/// preallocated ring in place and the monitor's detectors update O(1)
/// scalars and an already-full window.
#[test]
fn idle_ticks_with_recorder_and_monitor_do_not_allocate() {
    use parking_lot::Mutex;
    use std::sync::Arc;

    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let source = OpenLoopSource::new(
        net.clone(),
        spec,
        ArrivalProcess::OnOff {
            rate: 2.0,
            on: 50,
            off: 10_000,
        },
        11,
    );
    let config = EngineConfig {
        retention: Retention::Streaming { warmup: 0 },
        record_events: false,
        max_steps: u64::MAX,
        ..EngineConfig::default()
    };
    let recorder = dtm_telemetry::flight_recorder(256);
    let monitor = Arc::new(Mutex::new(dtm_telemetry::HealthMonitor::new(
        dtm_telemetry::HealthConfig::default(),
    )));
    let mut kernel = Engine::new(net, GreedyPolicy::new(), config)
        .with_observer(Arc::clone(&recorder))
        .with_observer(Arc::clone(&monitor))
        .into_kernel(source);

    // Warm up: fill the ring (> K steps) and the slope window, drain the
    // burst.
    kernel.run_for(2_000);
    assert_eq!(kernel.live_count(), 0, "burst did not drain");
    assert_eq!(recorder.lock().len(), 256, "ring warmed to capacity");

    for step in 0..1_000u64 {
        let before = allocations();
        kernel.tick();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "idle tick {step} (t={}) allocated with observers attached",
            kernel.now()
        );
    }
    assert_eq!(recorder.lock().steps_seen(), 3_000);
    assert!(
        monitor.lock().is_healthy(),
        "idle stream tripped a watchdog: {:?}",
        monitor.lock().events()
    );
}

/// Snapshots the allocation counter at phase boundaries and pins the
/// schedule phase (policy consultation + fragment application) to zero
/// allocations on warmed-up ticks that have live transactions but no
/// arrivals — the common case in a drained-but-busy stream, and the case
/// the incremental conflict cache exists for.
#[derive(Default)]
struct SchedulePhaseProbe {
    /// Set by the test once warmup is done; assertions fire only then.
    armed: bool,
    /// Completed ticks since the run began (== the policy's refresh
    /// count: the policy is consulted exactly once per tick).
    ticks: u64,
    gen_mark: u64,
    gen_items: usize,
    sched_delta: u64,
    /// Ticks the armed assertion actually covered.
    measured: u64,
}

impl dtm_sim::StepObserver for SchedulePhaseProbe {
    fn on_phase(
        &mut self,
        _t: dtm_model::Time,
        phase: dtm_sim::Phase,
        items: usize,
        _elapsed: std::time::Duration,
    ) {
        match phase {
            dtm_sim::Phase::Generate => {
                self.gen_items = items;
                self.gen_mark = allocations();
            }
            dtm_sim::Phase::Schedule => self.sched_delta = allocations() - self.gen_mark,
            _ => {}
        }
    }

    fn on_step_end(&mut self, effects: &dtm_sim::StepEffects) {
        self.ticks += 1;
        // Every DIVERGENCE_SAMPLE_PERIOD-th refresh the policy's caches
        // run a debug-build divergence check against a full rescan, which
        // legitimately allocates; skip those ticks (debug-only overhead,
        // absent in release builds).
        let divergence_sample = self.ticks.is_multiple_of(64);
        if self.armed && self.gen_items == 0 && effects.live_after > 0 && !divergence_sample {
            assert_eq!(
                self.sched_delta, 0,
                "warmed-up schedule phase allocated at t={} (live={})",
                effects.t, effects.live_after
            );
            self.measured += 1;
        }
    }

    fn wants_timing(&self, _t: dtm_model::Time) -> bool {
        false
    }
}

/// A warmed-up schedule phase with a non-empty live set and no arrivals
/// allocates nothing: the conflict cache folds the window's removals in
/// place and the policy's scratch buffers keep their capacity.
#[test]
fn warmed_schedule_phase_with_live_set_does_not_allocate() {
    use parking_lot::Mutex;
    use std::sync::Arc;

    // A long line keeps colors (and thus drain time) large, so each
    // burst is followed by a long tail of live-but-quiet ticks — the
    // regime under test (live transactions, no arrivals).
    let net = topology::line(16);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let source = OpenLoopSource::new(
        net.clone(),
        spec,
        ArrivalProcess::OnOff {
            rate: 2.0,
            on: 50,
            off: 2_000,
        },
        11,
    );
    let config = EngineConfig {
        retention: Retention::Streaming { warmup: 0 },
        record_events: false,
        max_steps: u64::MAX,
        ..EngineConfig::default()
    };
    let probe = Arc::new(Mutex::new(SchedulePhaseProbe::default()));
    let mut kernel = Engine::new(net, GreedyPolicy::new(), config)
        .with_observer(Arc::clone(&probe))
        .into_kernel(source);

    // First burst + drain sizes every scratch buffer.
    kernel.run_for(2_050);
    probe.lock().armed = true;
    // Second cycle: quiet in-burst ticks and the whole drain tail are
    // now asserted allocation-free.
    kernel.run_for(2_050);
    let measured = probe.lock().measured;
    assert!(
        measured > 20,
        "only {measured} live-and-quiet ticks measured; premise broken"
    );
}

/// Allocation growth across a long steady run is bounded: after warmup,
/// 10k further steps of a *live* Poisson stream allocate O(arrivals) —
/// not O(steps x live-set) — demonstrating per-tick buffer reuse under
/// load (every transaction still needs its own heap allocations, but the
/// kernel's bookkeeping adds only a constant factor).
#[test]
fn allocation_rate_under_load_tracks_arrivals_not_history() {
    let net = topology::clique(8);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let source = OpenLoopSource::new(net.clone(), spec, ArrivalProcess::Poisson { rate: 0.4 }, 23);
    let config = EngineConfig {
        retention: Retention::Streaming { warmup: 0 },
        record_events: false,
        max_steps: u64::MAX,
        ..EngineConfig::default()
    };
    let mut kernel = Engine::new(net, GreedyPolicy::new(), config).into_kernel(source);
    kernel.run_for(2_000); // warm up buffers and reach steady state

    let commits_before = kernel.commit_count();
    let before = allocations();
    kernel.run_for(10_000);
    let allocs = allocations() - before;
    let arrivals = (kernel.commit_count() - commits_before).max(1);
    // Generous constant: each arriving transaction costs a bounded
    // number of allocations (its access vec, arena entry, policy maps).
    let per_txn = allocs as f64 / arrivals as f64;
    assert!(
        per_txn < 64.0,
        "{allocs} allocations for {arrivals} txns ({per_txn:.1}/txn): steady state leaks"
    );
}
