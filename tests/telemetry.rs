//! Observability must never perturb a run: attaching the full telemetry
//! stack (phase profiler + metrics/trace sink + steady-state probe +
//! flight recorder + health monitor + per-policy decision trace) to the
//! golden-trace scenario must leave the schedule, commits, metrics and
//! the entire event log byte-identical to the bare run, for every
//! online policy.
//!
//! Also checks the structured exports end to end: the JSONL round trip
//! and the Chrome `trace_event` document against the schema validator.

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_model::{FiniteArrivals, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::{run_policy, Engine, EngineConfig, PhaseProfile, RunResult, SchedulingPolicy};
use dtm_telemetry::{
    decision_trace, flight_recorder, health_monitor, validate_chrome_trace, DecisionTrace,
    HealthConfig, MetricsRegistry, RunTrace, SteadyStateProbe, TelemetrySink,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// The golden-trace scenario: 4x4 grid, 8 objects, k=2, Bernoulli
/// arrivals over 40 steps, generator seed 2024.
fn scenario() -> (Network, dtm_model::Instance) {
    let net = topology::grid(&[4, 4]);
    let spec = WorkloadSpec {
        num_objects: 8,
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.25,
            horizon: 40,
        },
    };
    let inst = WorkloadGenerator::new(spec, 2024).generate(&net);
    (net, inst)
}

/// Run `policy` with the full observer stack attached — metrics/trace
/// sink, phase profiler, steady-state probe, flight recorder, and
/// health watchdogs; returns the run plus the captured side channels.
fn observed_run(
    net: &Network,
    inst: dtm_model::Instance,
    policy: Box<dyn SchedulingPolicy>,
    config: EngineConfig,
) -> (RunResult, RunTrace) {
    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(Mutex::new(
        TelemetrySink::new(Arc::clone(&registry)).with_full_timing(),
    ));
    let profile = Arc::new(Mutex::new(PhaseProfile::default()));
    let probe = Arc::new(Mutex::new(SteadyStateProbe::new(Arc::clone(&registry), 0)));
    let recorder = flight_recorder(32);
    let monitor = health_monitor(HealthConfig::default());
    let res = Engine::new(net.clone(), policy, config)
        .with_observer(Arc::clone(&sink))
        .with_observer(Arc::clone(&profile))
        .with_observer(Arc::clone(&probe))
        .with_observer(Arc::clone(&recorder))
        .with_observer(Arc::clone(&monitor))
        .run(TraceSource::new(inst));
    // The recorder saw every step and its dump is schema-valid; the
    // benign golden scenario must not trip any watchdog.
    {
        let rec = recorder.lock();
        assert!(rec.steps_seen() > 0, "recorder observed the run");
        dtm_telemetry::validate_flight_dump(&rec.dump()).expect("flight dump schema-valid");
        assert!(
            monitor.lock().is_healthy(),
            "golden scenario fired a watchdog: {:?}",
            monitor.lock().events()
        );
    }
    let spans = sink.lock().take_spans();
    let trace = RunTrace::from_run(&res, spans, None);
    (res, trace)
}

/// The two runs must agree on everything observable.
fn assert_identical(name: &str, bare: &RunResult, observed: &RunResult) {
    assert_eq!(bare.schedule, observed.schedule, "{name}: schedule");
    assert_eq!(bare.commits, observed.commits, "{name}: commits");
    assert_eq!(bare.generated, observed.generated, "{name}: generation");
    assert_eq!(bare.events, observed.events, "{name}: event log");
    assert_eq!(
        format!("{:?}", bare.metrics),
        format!("{:?}", observed.metrics),
        "{name}: metrics"
    );
    assert_eq!(
        format!("{:?}", bare.violations),
        format!("{:?}", observed.violations),
        "{name}: violations"
    );
}

fn check_no_perturbation(
    name: &str,
    mk_bare: impl Fn() -> Box<dyn SchedulingPolicy>,
    mk_traced: impl Fn(dtm_telemetry::DecisionTraceHandle) -> Box<dyn SchedulingPolicy>,
    config: EngineConfig,
) -> (RunTrace, DecisionTrace) {
    let (net, inst) = scenario();
    let bare = run_policy(
        &net,
        TraceSource::new(inst.clone()),
        mk_bare(),
        config.clone(),
    );
    bare.expect_ok();
    let decisions = decision_trace();
    let (observed, mut trace) = observed_run(&net, inst, mk_traced(Arc::clone(&decisions)), config);
    observed.expect_ok();
    assert_identical(name, &bare, &observed);
    let decisions = {
        let guard = decisions.lock();
        guard.clone()
    };
    trace.decisions = decisions.decisions.clone();
    // Every scheduled transaction explains itself at least once.
    for (txn, _) in observed.schedule.iter() {
        assert!(
            !decisions.for_txn(txn).is_empty(),
            "{name}: no decision recorded for {txn}"
        );
    }
    (trace, decisions)
}

#[test]
fn greedy_unperturbed_by_telemetry() {
    check_no_perturbation(
        "greedy",
        || Box::new(GreedyPolicy::new()),
        |d| Box::new(GreedyPolicy::new().with_decision_trace(d)),
        EngineConfig::default(),
    );
}

#[test]
fn bucket_unperturbed_by_telemetry() {
    check_no_perturbation(
        "bucket",
        || Box::new(BucketPolicy::new(ListScheduler::fifo())),
        |d| Box::new(BucketPolicy::new(ListScheduler::fifo()).with_decision_trace(d)),
        EngineConfig::default(),
    );
}

#[test]
fn distributed_bucket_unperturbed_by_telemetry() {
    let (net, _) = scenario();
    let mk_net = net.clone();
    check_no_perturbation(
        "distributed_bucket",
        move || Box::new(DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 7)),
        move |d| {
            Box::new(
                DistributedBucketPolicy::new(&mk_net, ListScheduler::fifo(), 7)
                    .with_decision_trace(d),
            )
        },
        DistributedBucketPolicy::<ListScheduler>::engine_config(),
    );
}

#[test]
fn fifo_unperturbed_by_telemetry() {
    check_no_perturbation(
        "fifo",
        || Box::new(FifoPolicy::new()),
        |d| Box::new(FifoPolicy::new().with_decision_trace(d)),
        EngineConfig::default(),
    );
}

#[test]
fn tsp_unperturbed_by_telemetry() {
    check_no_perturbation(
        "tsp",
        || Box::new(TspPolicy::new()),
        |d| Box::new(TspPolicy::new().with_decision_trace(d)),
        EngineConfig::default(),
    );
}

/// The full export path on a real run: JSONL round trip preserves the
/// trace, and the Chrome document passes the schema validator even after
/// a serialize/parse cycle.
#[test]
fn structured_exports_validate_on_real_run() {
    let (trace, decisions) = check_no_perturbation(
        "greedy-export",
        || Box::new(GreedyPolicy::new()),
        |d| Box::new(GreedyPolicy::new().with_decision_trace(d)),
        EngineConfig::default(),
    );
    assert!(!decisions.is_empty());
    assert!(!trace.phases.is_empty(), "full timing captured spans");

    let jsonl = trace.to_jsonl();
    let back = RunTrace::from_jsonl(&jsonl).expect("jsonl round trips");
    assert_eq!(back.events.len(), trace.events.len());
    assert_eq!(back.decisions.len(), trace.decisions.len());
    assert_eq!(back.phases.len(), trace.phases.len());
    assert_eq!(back.policy, trace.policy);

    let chrome = trace.chrome_trace();
    let n = validate_chrome_trace(&chrome).expect("chrome trace is schema-valid");
    // At minimum: one instant per commit and per decision, plus metadata.
    assert!(
        n > trace.metrics.committed + trace.decisions.len(),
        "expected commit + decision instants plus track metadata, got {n}"
    );
    // Survives a serialize/parse cycle (what Perfetto actually ingests).
    let text = serde_json::to_string(&chrome).expect("serializes");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parses");
    let m = validate_chrome_trace(&parsed).expect("parsed chrome trace validates");
    assert_eq!(n, m);
}

/// The kernel's once-per-tick timing decision must never leak into
/// behavior: a sink timing every step, a sink sampling every 64th step,
/// and a sink that never times (plus a bare run) must all produce the
/// same schedule, commits and event log. Pins the hoisted
/// `wants_timing` guard in `StepKernel::tick`.
#[test]
fn timing_sampling_never_perturbs_schedules() {
    let (net, inst) = scenario();
    let bare = run_policy(
        &net,
        TraceSource::new(inst.clone()),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    for sample_every in [0u64, 1, 64] {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(Mutex::new(
            TelemetrySink::new(Arc::clone(&registry)).with_timing_sample(sample_every),
        ));
        let observed = Engine::new(net.clone(), GreedyPolicy::new(), EngineConfig::default())
            .with_observer(sink)
            .run(TraceSource::new(inst.clone()));
        assert_identical(&format!("timing sample={sample_every}"), &bare, &observed);
    }
}
