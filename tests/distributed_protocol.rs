//! Integration tests of the distributed bucket protocol (Algorithm 3) and
//! its sparse-cover substrate.

use dtm_core::{BucketPolicy, DistStats, DistributedBucketPolicy};
use dtm_graph::{topology, Network, SparseCover};
use dtm_model::{ClosedLoopSource, WorkloadSpec};
use dtm_offline::ListScheduler;
use dtm_sim::{run_policy, validate_events, EngineConfig, ValidationConfig};
use parking_lot::Mutex;
use std::sync::Arc;

fn dist_cfg() -> EngineConfig {
    DistributedBucketPolicy::<ListScheduler>::engine_config()
}

fn dist_validation() -> ValidationConfig {
    ValidationConfig {
        speed_divisor: 2,
        ..ValidationConfig::default()
    }
}

/// Covers verify on every paper topology.
#[test]
fn sparse_cover_properties_on_paper_topologies() {
    let nets: Vec<Network> = vec![
        topology::clique(10),
        topology::line(24),
        topology::grid(&[5, 4]),
        topology::hypercube(4),
        topology::butterfly(2),
        topology::star(3, 4),
        topology::cluster(3, 3, 4),
    ];
    for net in &nets {
        let cover = SparseCover::build(net, 99);
        cover
            .verify(net)
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        // The hierarchy must reach the diameter.
        let top = cover.num_layers() - 1;
        assert!(cover.layer_radius(top) >= net.diameter());
    }
}

/// The protocol completes and validates on every paper topology.
#[test]
fn distributed_bucket_on_paper_topologies() {
    let nets: Vec<Network> = vec![
        topology::clique(8),
        topology::line(16),
        topology::grid(&[4, 4]),
        topology::star(3, 4),
        topology::cluster(3, 3, 4),
    ];
    for net in &nets {
        let spec = WorkloadSpec::batch_uniform((net.n() as u32 / 2).max(2), 2);
        let src = ClosedLoopSource::new(net.clone(), spec, 2, 31);
        let expected = src.total_txns();
        let res = run_policy(
            net,
            src,
            DistributedBucketPolicy::new(net, ListScheduler::fifo(), 8),
            dist_cfg(),
        );
        res.expect_ok();
        validate_events(net, &res, &dist_validation())
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        assert_eq!(res.metrics.committed, expected, "{}", net.name());
    }
}

/// Protocol accounting: every transaction gets a level, reports target
/// real layers, and messages flow.
#[test]
fn protocol_accounting() {
    let net = topology::grid(&[4, 4]);
    let stats = Arc::new(Mutex::new(DistStats::default()));
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let src = ClosedLoopSource::new(net.clone(), spec, 2, 41);
    let expected = src.total_txns();
    let cover_layers = SparseCover::build(&net, 8).num_layers();
    let res = run_policy(
        &net,
        src,
        DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 8).with_stats(Arc::clone(&stats)),
        dist_cfg(),
    );
    res.expect_ok();
    let s = stats.lock();
    assert_eq!(s.levels.len(), expected);
    assert!(
        s.messages >= expected as u64 * 3,
        "discovery+report+notify each"
    );
    for &layer in s.reports_per_layer.keys() {
        assert!(layer < cover_layers);
    }
    assert_eq!(s.report_latency.len(), expected);
}

/// Half-speed rule: the same schedule shape, but object traversals take
/// twice the edge weight — validated against the event log.
#[test]
fn half_speed_travel_times_validated() {
    let net = topology::line(12);
    let spec = WorkloadSpec::batch_uniform(4, 1);
    let src = ClosedLoopSource::new(net.clone(), spec, 1, 51);
    let res = run_policy(
        &net,
        src,
        DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 2),
        dist_cfg(),
    );
    res.expect_ok();
    // Correct divisor passes...
    validate_events(&net, &res, &dist_validation()).unwrap();
    // ...wrong divisor is caught.
    assert!(
        validate_events(&net, &res, &ValidationConfig::default()).is_err() || res.metrics.hops == 0
    );
}

/// The distributed schedule costs more than the centralized bucket
/// schedule on the same workload (Theorem 5's overhead is real), but
/// by a bounded factor.
#[test]
fn overhead_is_positive_and_bounded() {
    let net = topology::grid(&[4, 4]);
    let spec = WorkloadSpec::batch_uniform(8, 2);
    let central = {
        let src = ClosedLoopSource::new(net.clone(), spec.clone(), 2, 61);
        run_policy(
            &net,
            src,
            BucketPolicy::new(ListScheduler::fifo()),
            EngineConfig::default(),
        )
    };
    let dist = {
        let src = ClosedLoopSource::new(net.clone(), spec, 2, 61);
        run_policy(
            &net,
            src,
            DistributedBucketPolicy::new(&net, ListScheduler::fifo(), 8),
            dist_cfg(),
        )
    };
    central.expect_ok();
    dist.expect_ok();
    assert!(dist.metrics.makespan >= central.metrics.makespan);
    assert!(
        dist.metrics.makespan <= central.metrics.makespan * 100,
        "overhead exploded: {} vs {}",
        dist.metrics.makespan,
        central.metrics.makespan
    );
}
