//! End-to-end integration: workload generation -> online scheduling ->
//! synchronous execution -> independent event validation -> competitive
//! ratio analysis, across the full public API surface.

use dtm_core::{BucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::topology;
use dtm_model::{
    FiniteArrivals, Instance, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec,
};
use dtm_offline::{competitive_ratio, ListScheduler};
use dtm_sim::{run_policy, validate_events, EngineConfig, SchedulingPolicy, ValidationConfig};

fn online_workload(net: &dtm_graph::Network, seed: u64) -> Instance {
    let spec = WorkloadSpec {
        num_objects: (net.n() as u32 / 2).max(2),
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.2,
            horizon: 25,
        },
    };
    WorkloadGenerator::new(spec, seed).generate(net)
}

fn full_pipeline(policy: Box<dyn SchedulingPolicy>) {
    let net = topology::grid(&[4, 4]);
    let inst = online_workload(&net, 17);
    let n = inst.num_txns();
    inst.validate(&net).unwrap();
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        policy,
        EngineConfig::default(),
    );
    res.expect_ok();
    assert_eq!(res.metrics.committed, n);
    validate_events(&net, &res, &ValidationConfig::default()).unwrap();
    let report = competitive_ratio(&net, &res);
    assert!(report.max_ratio.is_finite());
    assert!(report.max_ratio >= 0.0);
    // Every commit is at the scheduled time.
    for (txn, commit) in &res.commits {
        assert_eq!(res.schedule.get(*txn), Some(*commit));
    }
    // Latencies are non-negative and bounded by the makespan.
    for (_, lat) in res.latencies() {
        assert!(lat <= res.metrics.makespan);
    }
}

#[test]
fn greedy_full_pipeline() {
    full_pipeline(Box::new(GreedyPolicy::new()));
}

#[test]
fn bucket_full_pipeline() {
    full_pipeline(Box::new(BucketPolicy::new(ListScheduler::fifo())));
}

#[test]
fn fifo_full_pipeline() {
    full_pipeline(Box::new(FifoPolicy::new()));
}

#[test]
fn tsp_full_pipeline() {
    full_pipeline(Box::new(TspPolicy::new()));
}

#[test]
fn instance_json_roundtrip_preserves_execution() {
    let net = topology::line(10);
    let inst = online_workload(&net, 23);
    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    let a = run_policy(
        &net,
        TraceSource::new(inst),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    let b = run_policy(
        &net,
        TraceSource::new(back),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    a.expect_ok();
    b.expect_ok();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.commits, b.commits);
}

#[test]
fn zipf_contention_still_clean() {
    let net = topology::clique(12);
    let spec = WorkloadSpec {
        num_objects: 8,
        k: 3,
        object_choice: ObjectChoice::Zipf { exponent: 1.2 },
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.3,
            horizon: 20,
        },
    };
    let inst = WorkloadGenerator::new(spec, 31).generate(&net);
    let n = inst.num_txns();
    let res = run_policy(
        &net,
        TraceSource::new(inst),
        GreedyPolicy::new(),
        EngineConfig::default(),
    );
    res.expect_ok();
    validate_events(&net, &res, &ValidationConfig::default()).unwrap();
    assert_eq!(res.metrics.committed, n);
}

#[test]
fn burst_arrivals_all_policies() {
    let net = topology::star(3, 4);
    let spec = WorkloadSpec {
        num_objects: 6,
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bursts {
            period: 12,
            per_burst: 8,
            bursts: 3,
        },
    };
    let inst = WorkloadGenerator::new(spec, 41).generate(&net);
    for policy in [
        Box::new(GreedyPolicy::new()) as Box<dyn SchedulingPolicy>,
        Box::new(BucketPolicy::new(ListScheduler::fifo())),
        Box::new(FifoPolicy::new()),
    ] {
        let res = run_policy(
            &net,
            TraceSource::new(inst.clone()),
            policy,
            EngineConfig::default(),
        );
        res.expect_ok();
        validate_events(&net, &res, &ValidationConfig::default()).unwrap();
        assert_eq!(res.metrics.committed, 24);
    }
}
