//! Checkpoint/resume byte-identity: pausing a run mid-flight with
//! [`StepKernel::checkpoint`] and resuming the snapshot must reproduce
//! the uninterrupted run exactly — the same [`dtm_sim::RunResult`]
//! rendering (schedule, commits, metrics, full event-log hash), the
//! same telemetry metrics snapshot, and the same golden-trace text —
//! for all five policies on 2 networks x 2 seeds.
//!
//! The telemetry check shares one sink handle between the pre-checkpoint
//! segment and the resumed kernel, so the registry accumulates exactly
//! the callbacks of one full run; wall-clock timing is disabled
//! (`with_timing_sample(0)`) so every recorded metric is deterministic.

use dtm_core::{BucketPolicy, DistributedBucketPolicy, FifoPolicy, GreedyPolicy, TspPolicy};
use dtm_graph::{topology, Network};
use dtm_integration::render;
use dtm_model::{
    FiniteArrivals, Instance, ObjectChoice, TraceSource, WorkloadGenerator, WorkloadSpec,
};
use dtm_offline::ListScheduler;
use dtm_sim::{Engine, EngineConfig, SchedulingPolicy};
use dtm_telemetry::{MetricsRegistry, TelemetrySink};
use parking_lot::Mutex;
use std::sync::Arc;

/// Checkpoint step: far enough in that objects are in flight and
/// schedules are partially executed, well before the runs finish.
const CHECKPOINT_AT: u64 = 7;

fn networks() -> Vec<Network> {
    vec![topology::grid(&[3, 3]), topology::clique(8)]
}

fn instance(net: &Network, seed: u64) -> Instance {
    let spec = WorkloadSpec {
        num_objects: 6,
        k: 2,
        object_choice: ObjectChoice::Uniform,
        arrival: FiniteArrivals::Bernoulli {
            rate: 0.3,
            horizon: 30,
        },
    };
    let inst = WorkloadGenerator::new(spec, seed).generate(net);
    inst.validate(net).expect("instance is valid");
    inst
}

/// Run `policy` twice on the same workload: once uninterrupted, once
/// checkpointed at step [`CHECKPOINT_AT`] and resumed from the snapshot
/// (the pre-checkpoint kernel is abandoned, as a crashed run would be).
/// Both the rendered result and the telemetry snapshot must match.
fn check_resume<P>(label: &str, net: &Network, inst: Instance, policy: P, config: EngineConfig)
where
    P: SchedulingPolicy + Clone + 'static,
{
    // Uninterrupted reference run, with a timing-free sink attached.
    let ref_registry = Arc::new(MetricsRegistry::new());
    let ref_sink = Arc::new(Mutex::new(
        TelemetrySink::new(Arc::clone(&ref_registry)).with_timing_sample(0),
    ));
    let uninterrupted = Engine::new(net.clone(), policy.clone(), config.clone())
        .with_observer(ref_sink)
        .run(TraceSource::new(inst.clone()));

    // Interrupted run: same sink handle observes the segment before the
    // checkpoint and the resumed kernel, accumulating one full run.
    let registry = Arc::new(MetricsRegistry::new());
    let sink = Arc::new(Mutex::new(
        TelemetrySink::new(Arc::clone(&registry)).with_timing_sample(0),
    ));
    let mut kernel = Engine::new(net.clone(), policy, config)
        .with_observer(Arc::clone(&sink))
        .into_kernel(TraceSource::new(inst));
    let ran = kernel.run_steps(CHECKPOINT_AT);
    assert_eq!(ran, CHECKPOINT_AT, "{label}: run ended before checkpoint");
    let checkpoint = kernel.checkpoint();
    assert_eq!(checkpoint.now(), CHECKPOINT_AT);
    drop(kernel); // abandon the original: only the snapshot survives
    let resumed = checkpoint.resume().with_observer(sink).finish();

    assert_eq!(
        render(&uninterrupted),
        render(&resumed),
        "{label}: resumed run diverged from the uninterrupted run"
    );
    assert_eq!(
        uninterrupted.events, resumed.events,
        "{label}: event logs differ"
    );
    let ref_snap = serde_json::to_string(&ref_registry.snapshot()).expect("snapshot serializes");
    let snap = serde_json::to_string(&registry.snapshot()).expect("snapshot serializes");
    assert_eq!(ref_snap, snap, "{label}: telemetry snapshots differ");
}

fn for_each_scenario(mut f: impl FnMut(&str, &Network, Instance)) {
    for net in networks() {
        for seed in [7u64, 2024] {
            let label = format!("{} seed={seed}", net.name());
            f(&label, &net, instance(&net, seed));
        }
    }
}

#[test]
fn resume_greedy() {
    for_each_scenario(|label, net, inst| {
        check_resume(
            &format!("greedy {label}"),
            net,
            inst,
            GreedyPolicy::new(),
            EngineConfig::default(),
        );
    });
}

#[test]
fn resume_bucket() {
    for_each_scenario(|label, net, inst| {
        check_resume(
            &format!("bucket {label}"),
            net,
            inst,
            BucketPolicy::new(ListScheduler::fifo()),
            EngineConfig::default(),
        );
    });
}

#[test]
fn resume_distributed_bucket() {
    for_each_scenario(|label, net, inst| {
        check_resume(
            &format!("distributed {label}"),
            net,
            inst,
            DistributedBucketPolicy::new(net, ListScheduler::fifo(), 7),
            DistributedBucketPolicy::<ListScheduler>::engine_config(),
        );
    });
}

#[test]
fn resume_fifo() {
    for_each_scenario(|label, net, inst| {
        check_resume(
            &format!("fifo {label}"),
            net,
            inst,
            FifoPolicy::new(),
            EngineConfig::default(),
        );
    });
}

#[test]
fn resume_tsp() {
    for_each_scenario(|label, net, inst| {
        check_resume(
            &format!("tsp {label}"),
            net,
            inst,
            TspPolicy::new(),
            EngineConfig::default(),
        );
    });
}

/// A checkpoint is a true snapshot: driving the *original* kernel
/// onward after taking it must not disturb the snapshot's outcome.
#[test]
fn checkpoint_is_isolated_from_the_original() {
    let net = topology::grid(&[3, 3]);
    let inst = instance(&net, 7);
    let reference = Engine::new(net.clone(), GreedyPolicy::new(), EngineConfig::default())
        .run(TraceSource::new(inst.clone()));

    let mut kernel = Engine::new(net, GreedyPolicy::new(), EngineConfig::default())
        .into_kernel(TraceSource::new(inst));
    kernel.run_steps(CHECKPOINT_AT);
    let checkpoint = kernel.checkpoint();
    // Drive the original well past the checkpoint before resuming.
    kernel.run_steps(10);
    let original = kernel.finish();
    let resumed = checkpoint.resume().finish();
    assert_eq!(render(&reference), render(&original));
    assert_eq!(render(&reference), render(&resumed));
}
