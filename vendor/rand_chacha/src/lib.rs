//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream cipher
//! used as a PRNG, implementing the local `rand` shim's [`RngCore`] and
//! [`SeedableRng`]. Deterministic for a given seed; not stream-compatible
//! with upstream `rand_chacha` (this workspace only requires in-repo
//! reproducibility).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8-based deterministic random generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word_pos: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;

        #[inline(always)]
        fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(16);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(12);
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(8);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(7);
        }

        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Output words look uniform enough for scheduling workloads: both
    /// halves of the u32 range are hit over a short stream.
    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut low = 0;
        for _ in 0..1000 {
            if rng.next_u32() < u32::MAX / 2 {
                low += 1;
            }
        }
        assert!((400..600).contains(&low), "low-half count {low}");
    }
}
