//! Offline stand-in for `serde`, shaped for this workspace's needs:
//! serialization goes through an owned JSON-like [`Value`] tree rather
//! than serde's zero-copy visitor machinery. [`Serialize`] renders a type
//! into a [`Value`]; [`Deserialize`] rebuilds it. The companion
//! `serde_derive` shim derives both for plain structs and enums, and the
//! `serde_json` shim converts [`Value`] to and from JSON text.
//!
//! Encoding conventions (self-consistent; both directions implemented
//! here, so upstream-serde wire compatibility is not required):
//! * named struct  -> object `{field: value, ...}`
//! * tuple struct  -> array of field values
//! * unit enum variant    -> string `"Variant"`
//! * payload enum variant -> `{"Variant": fields}`
//! * map (`BTreeMap`/`HashMap`) -> array of `[key, value]` pairs
//!   (JSON objects only admit string keys; this workspace keys maps by
//!   integer newtypes).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization / decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// An owned JSON-like value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered `(key, value)` pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents as u64, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric contents as i64, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Numeric contents as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// `value["key"]` sugar on objects; missing keys yield `Value::Null`
/// (mirroring `serde_json`'s `Index` behavior).
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Encode into a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decode from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg(format!(
                    "expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg(format!(
                    "expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} items", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::msg("expected map pair array"))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_array()
                    .ok_or_else(|| Error::msg("expected [k, v] pair"))?;
                if kv.len() != 2 {
                    return Err(Error::msg("expected [k, v] pair of length 2"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by key for a deterministic encoding.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::msg("expected map pair array"))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_array()
                    .ok_or_else(|| Error::msg("expected [k, v] pair"))?;
                if kv.len() != 2 {
                    return Err(Error::msg("expected [k, v] pair of length 2"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_as_pair_array() {
        let m: BTreeMap<u64, String> = [(3, "c".to_string()), (1, "a".to_string())].into();
        let v = m.to_value();
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v["a"], Value::UInt(1));
        assert_eq!(v["zzz"], Value::Null);
    }
}
