//! Offline stand-in for `criterion`, covering this workspace's bench
//! surface: `Criterion::default()` with the `sample_size` /
//! `measurement_time` / `warm_up_time` builders, `bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a warm-up phase calibrates the per-iteration cost,
//! then `sample_size` samples are collected, each timing a batch of
//! iterations sized so the whole measurement phase fits in
//! `measurement_time`. Results (mean / median / min / max ns per
//! iteration) are printed per benchmark; when the `CRITERION_SUMMARY_PATH`
//! environment variable is set, one JSON object per benchmark is appended
//! to that file (JSON-lines).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times the routine
/// in isolation regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Duration of the warm-up / calibration phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark. `routine` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        routine(&mut bencher);
        let stats = Stats::from_samples(&bencher.samples_ns);
        println!(
            "{name}: mean {} median {} (min {}, max {}, {} samples)",
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.samples,
        );
        if let Ok(path) = std::env::var("CRITERION_SUMMARY_PATH") {
            append_summary(&path, name, &stats);
        }
    }
}

/// Per-benchmark measurement driver handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called in calibrated batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up doubles as calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = iters_per_sample(per_iter, self.measurement_time, self.sample_size);

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup cost is
    /// excluded from the timings.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let mut warm_spent = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_spent < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters as f64;
        let iters = iters_per_sample(per_iter, self.measurement_time, self.sample_size);

        for _ in 0..self.sample_size {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            self.samples_ns.push(spent.as_nanos() as f64 / iters as f64);
        }
    }
}

fn iters_per_sample(per_iter_secs: f64, measurement: Duration, samples: usize) -> u64 {
    let per_sample_budget = measurement.as_secs_f64() / samples as f64;
    let iters = (per_sample_budget / per_iter_secs.max(1e-9)).floor() as u64;
    iters.clamp(1, 1_000_000)
}

struct Stats {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Stats {
        assert!(
            !samples.is_empty(),
            "bench closure never called Bencher::iter / iter_batched"
        );
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        Stats {
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median_ns: median,
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("non-empty"),
            samples: sorted.len(),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

fn append_summary(path: &str, name: &str, stats: &Stats) {
    use std::io::Write;
    let line = format!(
        "{{\"bench\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}\n",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        stats.mean_ns,
        stats.median_ns,
        stats.min_ns,
        stats.max_ns,
        stats.samples,
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: cannot append summary to {path}: {e}");
    }
}

/// Define a bench group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("shim/self-test", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
    }

    #[test]
    fn iter_batched_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("shim/batched-self-test", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn stats_median_even_count() {
        let s = Stats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median_ns, 2.5);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 4.0);
    }
}
