//! Offline stand-in for `serde_json`: JSON text to and from the local
//! `serde` shim's [`Value`] tree. Covers what this workspace uses —
//! `to_string`, `to_string_pretty`, `from_str`, `from_value` and the
//! [`json!`] macro — with a small recursive-descent parser.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
pub type Error = serde::Error;

/// Convenience alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Decode a [`Value`] tree into any [`Deserialize`] type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Build a [`Value`] from JSON-ish syntax. Supports object/array literals,
/// `null`, and single-token expressions for leaf values (idents, literals,
/// parenthesized expressions) — enough for this workspace's trace tooling.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::ToString::to_string(&$key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

// ---- writer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep a float marker so the value parses back as a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Upstream serde_json also refuses non-finite floats in JSON.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|i| Value::Int(-i))
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-9i64).unwrap()).unwrap(), -9);
        assert_eq!(
            from_str::<f64>(&to_string(&0.25f64).unwrap()).unwrap(),
            0.25
        );
        assert_eq!(
            from_str::<String>(&to_string("a\"b\\c\nd").unwrap()).unwrap(),
            "a\"b\\c\nd"
        );
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn float_keeps_marker() {
        // A whole-valued float must not collapse into an integer literal.
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 3.0);
    }

    #[test]
    fn json_macro_shapes() {
        let name = "grid";
        let v = json!({
            "topology": name,
            "nested": { "n": 3u32 },
            "list": [1u32, 2u32],
        });
        assert_eq!(v["topology"].as_str(), Some("grid"));
        assert_eq!(v["nested"]["n"].as_u64(), Some(3));
        assert_eq!(v["list"].as_array().map(|a| a.len()), Some(2));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "a": [1u32, 2u32], "b": "x" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
    }
}
