//! Offline stand-in for `serde_derive`. Parses the item token stream by
//! hand (no `syn`/`quote` available offline) and emits `Serialize` /
//! `Deserialize` impls against the local `serde` shim's value-tree model.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * non-generic named structs, tuple structs and unit structs;
//! * non-generic enums with unit, tuple and struct variants.
//!
//! Generic types are rejected with a compile-time panic rather than
//! silently miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree encoder).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree decoder).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- item model -----------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields: only the arity matters.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        kw => panic!("cannot derive serde impls for `{kw}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments arrive in this form too).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // the `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` and friends.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list on top-level commas. Tracks `<...>` nesting
/// manually: angle brackets are plain puncts in a token stream, so a comma
/// inside `BTreeMap<K, V>` is *not* protected by a delimiter group.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().expect("non-empty").push(tok);
    }
    out.retain(|seg| !seg.is_empty());
    out
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match seg.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            i += 1;
            let fields = match seg.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ---- code generation ------------------------------------------------------

/// Expression serializing named fields reachable as `{prefix}{field}`
/// (e.g. `&self.foo` or a pattern binding `foo`).
fn ser_named_object(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        pairs.join(", ")
    )
}

fn ser_tuple_array(n: usize, access: impl Fn(usize) -> String) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Serialize::to_value({})", access(i)))
        .collect();
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(n) => ser_tuple_array(*n, |i| format!("&self.{i}")),
                Fields::Named(fs) => ser_named_object(fs, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = ser_tuple_array(*n, |i| format!("f{i}"));
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), {payload})])),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let payload = ser_named_object(fs, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), {payload})])),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Expression decoding named fields out of object expression `{src}`
/// into a `Name { ... }` / `Name::Variant { ... }` constructor body.
fn de_named_ctor(fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\")\
                 .unwrap_or(&::serde::Value::Null))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn de_tuple_ctor(n: usize, items: &str) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{items}[{i}])?,"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(n) => format!(
                    "let items = v.as_array().ok_or_else(|| \
                         ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                     if items.len() != {n} {{\n\
                         return Err(::serde::Error::msg(\"wrong arity for {name}\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    de_tuple_ctor(*n, "items")
                ),
                Fields::Named(fs) => format!(
                    "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                         return Err(::serde::Error::msg(\"expected object for {name}\"));\n\
                     }}\n\
                     Ok({name} {{\n{}\n}})",
                    de_named_ctor(fs, "v")
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(n) => Some(format!(
                            "\"{vn}\" => {{\n\
                                 let items = payload.as_array().ok_or_else(|| \
                                     ::serde::Error::msg(\"expected array payload for {name}::{vn}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            de_tuple_ctor(*n, "items")
                        )),
                        Fields::Named(fs) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{}\n}}),",
                            de_named_ctor(fs, "payload")
                        )),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::msg(::std::format!(\n\
                                     \"unknown unit variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::msg(::std::format!(\n\
                                         \"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::msg(\"expected enum encoding for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
