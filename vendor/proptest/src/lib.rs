//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro over `#[test]` functions whose arguments
//! are drawn from integer-range, tuple, and `collection::vec` strategies,
//! plus `prop_assert!` / `prop_assert_eq!` and `ProptestConfig::with_cases`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case index, and the run is deterministic (the RNG is seeded from the
//! test function's name), so failures reproduce exactly.

#![forbid(unsafe_code)]

/// Runner configuration; only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Upstream defaults to 256 cases; this shim defaults lower to keep
    /// suite wall-time reasonable without shrinking support. Call sites
    /// that need a specific count set it via `with_cases`.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    //! The deterministic RNG behind case generation.

    /// SplitMix64 generator: tiny, fast, and good enough for drawing
    //  test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a label (the test function name),
        /// so each test draws an independent but reproducible stream.
        pub fn for_label(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// Draw a value for one macro-bound argument.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draw one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128) - (self.start as u128);
                    ((self.start as u128) + ((rng.next_u64() as u128) % span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    ((lo as u128) + ((rng.next_u64() as u128) % span)) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with length drawn from `size` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy over an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///     #[test]
///     fn holds(x in 0u64..100, pair in (0u32..4, 1u32..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*
        }
    };
}

/// Internal: expand each `#[test] fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_label(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($args)*);
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Internal: turn `name in strategy, ...` argument lists into `let`
/// bindings. Strategy expressions are accumulated token-by-token up to a
/// top-level comma (commas inside parentheses are hidden inside token
/// groups, so tuple and call strategies split correctly).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $($rest:tt)+) => {
        $crate::__proptest_bind!(@acc $rng, $arg, (); $($rest)+);
    };
    (@acc $rng:ident, $arg:ident, ($($strat:tt)+);) => {
        let $arg = $crate::strategy::Strategy::pick(&($($strat)+), &mut $rng);
    };
    (@acc $rng:ident, $arg:ident, ($($strat:tt)+); , $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::pick(&($($strat)+), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    (@acc $rng:ident, $arg:ident, ($($strat:tt)*); $tok:tt $($rest:tt)*) => {
        $crate::__proptest_bind!(@acc $rng, $arg, ($($strat)* $tok); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Tuple and vec strategies compose; trailing commas accepted.
        #[test]
        fn composite_strategies(
            pair in (0u64..60, 1u64..12),
            raw in crate::collection::vec((0u64..60, 1u64..12), 0..10),
        ) {
            prop_assert!(pair.0 < 60 && (1..12).contains(&pair.1));
            prop_assert!(raw.len() < 10);
            for (a, b) in raw {
                prop_assert!(a < 60);
                prop_assert!((1..12).contains(&b));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::for_label("t");
        let mut b = crate::test_runner::TestRng::for_label("t");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
