//! Offline stand-in for `rayon`: `par_iter()` and friends degrade to the
//! corresponding *sequential* std iterators. Every adaptor the real
//! ParallelIterator shares with std's Iterator (`map`, `filter`,
//! `collect`, ...) then just works, with identical results — the
//! workspace's uses of rayon are embarrassingly parallel reductions whose
//! output does not depend on execution order.

#![forbid(unsafe_code)]

/// `use rayon::prelude::*` — mirror of rayon's prelude.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Items yielded.
    type Item;
    /// "Parallel" iteration (sequential here).
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Items yielded.
    type Item: 'a;
    /// `.par_iter()` (sequential here).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Items yielded.
    type Item: 'a;
    /// `.par_iter_mut()` (sequential here).
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_maps_and_collects() {
        let xs = vec![1, 2, 3];
        let ys: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, vec![2, 4, 6]);
    }
}
