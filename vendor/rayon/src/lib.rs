//! Offline stand-in for `rayon` backed by a **real** thread pool.
//!
//! Unlike the original sequential shim, `par_iter()` / `into_par_iter()`
//! now fan work out across OS threads: every pipeline drain spawns a
//! work-stealing-lite pool (scoped threads pulling fixed-size chunks off
//! an atomic index queue), so callers get genuine parallelism without a
//! persistent runtime. The API surface mirrors the subset of upstream
//! rayon this workspace uses: the prelude traits, `map` / `filter` /
//! `for_each` / `collect` / `reduce` / `sum` / `count`, and
//! `ThreadPoolBuilder::num_threads(..).build_global()`.
//!
//! Determinism contract: `collect` is **order-preserving** — results come
//! back in the source's iteration order regardless of thread count or
//! scheduling, so a pipeline whose per-item work is pure produces
//! byte-identical output at any `--jobs` level. Reductions combine the
//! (order-preserved) mapped items sequentially, so they too are
//! independent of thread count even for non-commutative operators.
//!
//! Thread-count resolution, most specific wins:
//! 1. a [`with_num_threads`] override on the calling thread,
//! 2. the global count set by [`ThreadPoolBuilder::build_global`],
//! 3. the `RAYON_NUM_THREADS` environment variable (read once per
//!    process),
//! 4. [`std::thread::available_parallelism`].
//!
//! Divergence from upstream: `build_global` may be called repeatedly (the
//! last call wins) instead of erroring — experiment binaries re-apply
//! their `--jobs` flag without ceremony, and tests can flip counts.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// `use rayon::prelude::*` — mirror of rayon's prelude.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

// ---------------------------------------------------------------------------
// Thread-count control
// ---------------------------------------------------------------------------

/// Global thread count set by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS`, parsed once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_num_threads`] (0 = unset).
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads a pipeline drained on this thread will
/// use. See the module docs for the resolution order.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f` with the calling thread's pool width pinned to `n` (restored
/// afterwards, even on panic). Overrides the global and environment
/// settings; does not propagate into nested pools spawned by worker
/// threads. The deterministic way for tests to compare thread counts
/// without touching process-global state.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Error type kept for upstream signature compatibility; this shim's
/// [`ThreadPoolBuilder::build_global`] never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder` for the global pool width.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker thread count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the count process-wide. Unlike upstream, repeat calls
    /// succeed and the last call wins (see module docs).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator
// ---------------------------------------------------------------------------

/// A parallel pipeline: an eagerly-materialized source plus a composed
/// per-item function, executed across the pool when drained
/// (`collect` / `reduce` / `for_each` / ...).
///
/// `'env` bounds the environment the pipeline's closures may borrow;
/// execution happens inside the draining call, so borrows of the caller's
/// locals are fine.
pub struct ParIter<'env, T: Send, R: Send> {
    items: Vec<T>,
    /// Composed pipeline: `None` means the item was dropped by a `filter`.
    f: Box<dyn Fn(T) -> Option<R> + Send + Sync + 'env>,
}

impl<'env, T: Send + 'env, R: Send + 'env> ParIter<'env, T, R> {
    fn from_items(items: Vec<T>) -> ParIter<'env, T, T> {
        ParIter {
            items,
            f: Box::new(Some),
        }
    }

    /// Map each item through `g`.
    pub fn map<S, G>(self, g: G) -> ParIter<'env, T, S>
    where
        S: Send + 'env,
        G: Fn(R) -> S + Send + Sync + 'env,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |t| f(t).map(&g)),
        }
    }

    /// Keep only items for which `pred` holds.
    pub fn filter<G>(self, pred: G) -> ParIter<'env, T, R>
    where
        G: Fn(&R) -> bool + Send + Sync + 'env,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |t| f(t).filter(&pred)),
        }
    }

    /// Run the pipeline over the pool and return surviving results **in
    /// source order** — the determinism guarantee everything else is
    /// built on.
    fn execute(self) -> Vec<R> {
        let n = self.items.len();
        let threads = current_num_threads().min(n).max(1);
        if threads == 1 {
            return self.items.into_iter().filter_map(&self.f).collect();
        }
        // Ownership hand-off without unsafe: each input slot is taken by
        // exactly one worker (indices are claimed via fetch_add), each
        // output slot is written by exactly one worker. The per-slot
        // mutexes are uncontended by construction.
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Chunked claims: ~4 chunks per worker balances steal granularity
        // against queue contention.
        let chunk = n.div_ceil(threads * 4).max(1);
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        let item = slots[i]
                            .lock()
                            .expect("input slot lock")
                            .take()
                            .expect("slot claimed twice");
                        let r = f(item);
                        *out[i].lock().expect("output slot lock") = r;
                    }
                });
            }
        });
        out.into_iter()
            .filter_map(|m| m.into_inner().expect("output slot poisoned"))
            .collect()
    }

    /// Drain into any `FromIterator` collection, preserving source order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.execute().into_iter().collect()
    }

    /// Apply `g` to every item (for effects).
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Send + Sync + 'env,
    {
        self.map(g).execute();
    }

    /// Fold all results with `op`, starting from `identity()`. Items were
    /// computed in parallel; combination is sequential in source order,
    /// so the result is thread-count independent even for
    /// non-commutative `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.execute().into_iter().fold(identity(), op)
    }

    /// Sum all results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.execute().into_iter().sum()
    }

    /// Number of items surviving the pipeline.
    pub fn count(self) -> usize {
        self.execute().len()
    }
}

// ---------------------------------------------------------------------------
// Prelude traits
// ---------------------------------------------------------------------------

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Items yielded.
    type Item: Send;
    /// Start a parallel pipeline consuming `self`. The pipeline lifetime
    /// `'env` is inferred at the call site: it only needs to outlive the
    /// items (and, later, any `map`/`filter` closures attached to it).
    fn into_par_iter<'env>(self) -> ParIter<'env, Self::Item, Self::Item>
    where
        Self::Item: 'env;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter<'env>(self) -> ParIter<'env, I::Item, I::Item>
    where
        I::Item: 'env,
    {
        ParIter::<I::Item, I::Item>::from_items(self.into_iter().collect())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Items yielded (references into `self`).
    type Item: Send + 'a;
    /// Start a parallel pipeline borrowing `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<'a, &'a T, &'a T> {
        ParIter::<&T, &T>::from_items(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<'a, &'a T, &'a T> {
        self.as_slice().par_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Items yielded (mutable references into `self`).
    type Item: Send + 'a;
    /// Start a parallel pipeline mutably borrowing `self`.
    fn par_iter_mut(&'a mut self) -> ParIter<'a, Self::Item, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<'a, &'a mut T, &'a mut T> {
        ParIter::<&mut T, &mut T>::from_items(self.iter_mut().collect())
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<'a, &'a mut T, &'a mut T> {
        self.as_mut_slice().par_iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_maps_and_collects() {
        let xs = vec![1, 2, 3];
        let ys: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, vec![2, 4, 6]);
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> =
            with_num_threads(1, || items.par_iter().map(|&x| x * x + 1).collect());
        for threads in [2, 3, 4, 8] {
            let parallel: Vec<u64> =
                with_num_threads(threads, || items.par_iter().map(|&x| x * x + 1).collect());
            assert_eq!(parallel, serial, "order broke at {threads} threads");
        }
    }

    #[test]
    fn work_actually_fans_out_across_threads() {
        // Item 0 sits in the first chunk, so the first worker to claim work
        // parks on it until some *other* worker has completed an item. That
        // forces at least two threads to participate even on a single-core
        // host where one worker could otherwise drain the queue alone. The
        // timeout keeps a pathological scheduler from hanging the suite.
        let done = AtomicUsize::new(0);
        let ids: HashSet<std::thread::ThreadId> = with_num_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    if i == 0 {
                        let start = std::time::Instant::now();
                        while done.load(Ordering::SeqCst) == 0
                            && start.elapsed() < std::time::Duration::from_secs(10)
                        {
                            std::thread::yield_now();
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    std::thread::current().id()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect()
        });
        assert!(
            ids.len() > 1,
            "expected multiple worker threads, saw {}",
            ids.len()
        );
    }

    #[test]
    fn filter_and_count() {
        let n = with_num_threads(4, || {
            (0..100u32).into_par_iter().filter(|x| x % 3 == 0).count()
        });
        assert_eq!(n, 34);
    }

    #[test]
    fn reduce_is_thread_count_independent_for_noncommutative_op() {
        // String concatenation is order-sensitive: any reordering shows.
        let words: Vec<String> = (0..64).map(|i| format!("w{i} ")).collect();
        let serial = with_num_threads(1, || {
            words
                .par_iter()
                .map(|w| w.clone())
                .reduce(String::new, |a, b| a + &b)
        });
        let parallel = with_num_threads(7, || {
            words
                .par_iter()
                .map(|w| w.clone())
                .reduce(String::new, |a, b| a + &b)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sum_and_for_each() {
        let total: u64 = with_num_threads(4, || (1..=100u64).into_par_iter().sum());
        assert_eq!(total, 5050);
        let hits = AtomicUsize::new(0);
        with_num_threads(4, || {
            (0..37).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let mut xs = vec![1u32, 2, 3, 4];
        with_num_threads(2, || {
            xs.par_iter_mut().for_each(|x| *x *= 10);
        });
        assert_eq!(xs, vec![10, 20, 30, 40]);
    }

    #[test]
    fn build_global_and_overrides_compose() {
        // Thread-local override beats everything.
        with_num_threads(3, || assert_eq!(current_num_threads(), 3));
        // build_global is re-callable; 0 resets to automatic.
        ThreadPoolBuilder::new()
            .num_threads(5)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 5);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn empty_and_single_item_pipelines() {
        let empty: Vec<u32> = with_num_threads(4, || Vec::<u32>::new().into_par_iter().collect());
        assert!(empty.is_empty());
        let one: Vec<u32> = with_num_threads(4, || vec![7u32].into_par_iter().collect());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..64u32)
                    .into_par_iter()
                    .map(|x| {
                        assert!(x != 33, "boom");
                        x
                    })
                    .collect::<Vec<_>>()
            })
        });
        assert!(result.is_err(), "panic in a worker must fail the drain");
    }
}
