//! Offline stand-in for the `rand` crate covering the API subset this
//! workspace uses: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! Sampling algorithms are simple and fully deterministic given the
//! generator stream (modulo reduction for integers, 53-bit mantissa fill
//! for floats, Fisher–Yates for shuffles). They are *not* stream-compatible
//! with upstream `rand` — every consumer in this workspace only relies on
//! reproducibility across runs of the same binary, which this provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used to expand `u64` seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64 + 1;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// Uniform `f64` in `[0, 1)` from 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..200 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
